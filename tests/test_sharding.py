"""Sharded parallel validation: planner geometry, multi-process parity
with the one-shot path, and the pipeline/service wiring.

Pool spawns are expensive (each worker re-imports the package), so the
tests share module-scoped executors and keep worker counts small; the
parity claims are shard-count claims, not pool-size claims — results are
identical for any worker count by construction.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema, read_csv_chunks, write_csv
from repro.exceptions import ReproError, SchemaError, ValidationError
from repro.runtime import ParallelValidator, Shard, ShardPlanner, ValidationService
from repro.runtime.streaming import StreamSummary


def make_table(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


@pytest.fixture(scope="module")
def fitted() -> tuple[DQuaG, Table]:
    train = make_table(500, seed=0)
    config = DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)
    pipeline = DQuaG(config).fit(train, rng=0)
    return pipeline, make_table(1100, seed=2)


@pytest.fixture(scope="module")
def parallel(fitted):
    pipeline, _ = fitted
    with ParallelValidator.from_pipeline(
        pipeline, workers=2, chunk_size=256, chunks_per_shard=2
    ) as validator:
        yield validator


# ---------------------------------------------------------------------------
# planner geometry (no processes involved)
# ---------------------------------------------------------------------------
class TestShardPlanner:
    def test_plan_is_chunk_aligned_and_covers_all_rows(self):
        planner = ShardPlanner(chunk_size=100)
        shards = planner.plan(1050, shards=4)
        assert [s.offset for s in shards] == [0, 300, 600, 900]
        assert sum(s.n_rows for s in shards) == 1050
        assert all(s.offset % 100 == 0 for s in shards)
        assert shards[-1].stop == 1050

    def test_plan_never_exceeds_chunk_count(self):
        planner = ShardPlanner(chunk_size=100)
        shards = planner.plan(150, shards=8)  # only 2 chunks exist
        assert len(shards) == 2
        assert [(s.offset, s.n_rows) for s in shards] == [(0, 100), (100, 50)]

    def test_plan_single_shard_and_empty(self):
        planner = ShardPlanner(chunk_size=64)
        assert planner.plan(10, shards=1) == [Shard(index=0, offset=0, n_rows=10)]
        assert planner.plan(0, shards=4) == []

    def test_plan_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardPlanner(chunk_size=0)
        planner = ShardPlanner()
        with pytest.raises(ValueError):
            planner.plan(-1, shards=2)
        with pytest.raises(ValueError):
            planner.plan(10, shards=0)

    def test_split_table_reassembles_exactly(self):
        table = make_table(530, seed=7)
        planner = ShardPlanner(chunk_size=128)
        pieces = planner.split_table(table, shards=3)
        assert sum(piece.n_rows for _, piece in pieces) == table.n_rows
        rebuilt = Table.concat([piece for _, piece in pieces])
        for name in table.schema.names:
            np.testing.assert_array_equal(rebuilt.column(name), table.column(name))

    def test_stream_shards_regroup_exactly(self):
        table = make_table(700, seed=8)
        # Incoming chunks of awkward size 90; shards re-cut at 2×128 rows.
        chunks = [
            table.take(np.arange(i, min(i + 90, table.n_rows)))
            for i in range(0, table.n_rows, 90)
        ]
        planner = ShardPlanner(chunk_size=128)
        shards = list(planner.iter_stream_shards(iter(chunks), chunks_per_shard=2))
        offsets = [shard.offset for shard, _ in shards]
        assert offsets == sorted(offsets)
        assert all(offset % 256 == 0 for offset in offsets)
        assert sum(shard.n_rows for shard, _ in shards) == table.n_rows
        rebuilt = Table.concat([piece for _, piece in shards])
        np.testing.assert_array_equal(rebuilt.column("x"), table.column("x"))

    def test_stream_shards_accept_matrices(self):
        planner = ShardPlanner(chunk_size=10)
        matrix = np.arange(250, dtype=np.float64).reshape(50, 5)
        pieces = list(planner.iter_stream_shards(iter([matrix[:33], matrix[33:]]), chunks_per_shard=2))
        np.testing.assert_array_equal(np.concatenate([m for _, m in pieces]), matrix)

    def test_stream_shards_reject_mixed_kinds(self):
        planner = ShardPlanner(chunk_size=10)
        table = make_table(30, seed=1)
        with pytest.raises(ValidationError, match="mix"):
            list(planner.iter_stream_shards(iter([table, np.zeros((5, 4))])))

    def test_stream_shards_never_concatenate(self, monkeypatch):
        """Regression: the regroup used to re-concatenate every buffered
        chunk on each cut. It must now write into one pre-allocated
        buffer — no concat call may happen while the stream is consumed."""
        table = make_table(700, seed=9)
        chunks = [
            table.take(np.arange(i, min(i + 90, table.n_rows)))
            for i in range(0, table.n_rows, 90)
        ]
        planner = ShardPlanner(chunk_size=128)

        def boom(*args, **kwargs):
            raise AssertionError("stream regroup must not concatenate")

        with monkeypatch.context() as patch:
            patch.setattr(np, "concatenate", boom)
            patch.setattr(Table, "concat", staticmethod(boom))
            shards = list(planner.iter_stream_shards(iter(chunks), chunks_per_shard=2))
        assert sum(shard.n_rows for shard, _ in shards) == table.n_rows
        rebuilt = Table.concat([piece for _, piece in shards])
        np.testing.assert_array_equal(rebuilt.column("x"), table.column("x"))

    def test_stream_shards_allocation_count_is_constant(self, monkeypatch):
        """With ``reuse_buffer=True`` the whole stream allocates exactly
        one shard buffer (one array per column), independent of how many
        chunks or shards flow through."""
        table = make_table(1500, seed=10)
        chunks = [
            table.take(np.arange(i, min(i + 90, table.n_rows)))
            for i in range(0, table.n_rows, 90)
        ]
        planner = ShardPlanner(chunk_size=128)
        real_empty = np.empty
        allocations = []

        def counting_empty(*args, **kwargs):
            allocations.append(args)
            return real_empty(*args, **kwargs)

        consumed = 0
        with monkeypatch.context() as patch:
            patch.setattr(np, "empty", counting_empty)
            for shard, piece in planner.iter_stream_shards(
                iter(chunks), chunks_per_shard=2, reuse_buffer=True
            ):
                consumed += shard.n_rows  # consume before the next cut
        assert consumed == table.n_rows
        assert len(allocations) == len(table.schema.names)

    def test_stream_shards_reuse_buffer_shares_backing(self):
        table = make_table(600, seed=11)
        chunks = [
            table.take(np.arange(i, min(i + 90, table.n_rows)))
            for i in range(0, table.n_rows, 90)
        ]
        planner = ShardPlanner(chunk_size=128)
        stream = planner.iter_stream_shards(iter(chunks), chunks_per_shard=2, reuse_buffer=True)
        _, first = next(stream)
        first_x = first.column("x")
        first_values = first_x.copy()
        np.testing.assert_array_equal(first_values, table.column("x")[: first.n_rows])
        _, second = next(stream)
        # Same backing buffer: allocation-free, and the first view now
        # holds the second shard's rows — the documented consume-before-
        # advance contract.
        assert np.shares_memory(first_x, second.column("x"))
        np.testing.assert_array_equal(
            second.column("x"), table.column("x")[first.n_rows : first.n_rows + second.n_rows]
        )

    def test_stream_shards_promote_dtype_like_concat(self):
        """A later chunk with wider fixed-width strings regrows the
        column buffer to the promoted dtype, exactly as np.concatenate
        would have (CSV chunk readers hand out ``_wrap``-built tables
        whose string columns keep their fixed-width dtype)."""
        schema = TableSchema(
            [
                ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
                ColumnSpec("c", ColumnKind.CATEGORICAL, "band", categories=("lo", "medium")),
            ]
        )
        narrow = Table._wrap(
            schema,
            {"x": np.arange(3.0), "c": np.array(["lo", "lo", "lo"])},
            3,
        )
        wide = Table._wrap(
            schema,
            {"x": np.arange(3.0, 6.0), "c": np.array(["medium", "medium", "medium"])},
            3,
        )
        planner = ShardPlanner(chunk_size=3)
        shards = list(planner.iter_stream_shards(iter([narrow, wide]), chunks_per_shard=2))
        assert len(shards) == 1
        merged = shards[0][1]
        assert merged.column("c").dtype == np.promote_types(
            narrow.column("c").dtype, wide.column("c").dtype
        )
        assert list(merged.column("c")) == ["lo", "lo", "lo", "medium", "medium", "medium"]


# ---------------------------------------------------------------------------
# multi-process parity with the one-shot path
# ---------------------------------------------------------------------------
class TestParallelParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_report_bit_identical_across_shard_counts(self, fitted, parallel, shards):
        pipeline, holdout = fitted
        one_shot = pipeline.validate(holdout)
        sharded = parallel.validate_table(holdout, shards=shards, keep_cell_errors=True)
        np.testing.assert_array_equal(sharded.row_flags, one_shot.row_flags)
        np.testing.assert_array_equal(sharded.cell_flags, one_shot.cell_flags)
        np.testing.assert_array_equal(sharded.sample_errors, one_shot.sample_errors)
        np.testing.assert_array_equal(sharded.cell_errors, one_shot.cell_errors)
        assert sharded.threshold == one_shot.threshold
        assert sharded.flagged_fraction == one_shot.flagged_fraction
        assert sharded.is_problematic == one_shot.is_problematic
        assert sharded.feature_names == one_shot.feature_names

    def test_summary_identical_to_single_process_streaming(self, fitted, parallel):
        pipeline, holdout = fitted
        single = pipeline.streaming_validator(chunk_size=256).validate_table(holdout)
        sharded = parallel.validate_table(holdout, shards=3)
        assert isinstance(sharded, StreamSummary)
        # Shard boundaries are multiples of the chunk size, so the global
        # chunk partition — and with it every accumulated float — matches
        # the single-process fold bit for bit.
        assert sharded.n_rows == single.n_rows
        assert sharded.n_chunks == single.n_chunks
        assert sharded.n_flagged == single.n_flagged
        np.testing.assert_array_equal(sharded.flagged_rows, single.flagged_rows)
        assert sharded.flagged_cells_by_column == single.flagged_cells_by_column
        assert sharded.mean_sample_error == single.mean_sample_error
        assert sharded.max_sample_error == single.max_sample_error
        assert sharded.is_problematic == single.is_problematic

    def test_stream_of_tables_matches_one_shot_flags(self, fitted, parallel):
        pipeline, holdout = fitted
        one_shot = pipeline.validate(holdout)
        chunks = [
            holdout.take(np.arange(i, min(i + 100, holdout.n_rows)))
            for i in range(0, holdout.n_rows, 100)
        ]
        summary = parallel.validate_stream(iter(chunks))
        assert summary.n_rows == holdout.n_rows
        assert summary.n_flagged == one_shot.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, one_shot.flagged_rows)
        assert summary.is_problematic == one_shot.is_problematic

    def test_stream_from_csv_chunks(self, fitted, parallel, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "holdout.csv"
        write_csv(holdout, path)
        summary = parallel.validate_stream(read_csv_chunks(path, holdout.schema, chunk_size=190))
        one_shot = pipeline.validate(holdout)
        assert summary.n_rows == holdout.n_rows
        assert summary.n_flagged == one_shot.n_flagged

    def test_stream_of_preprocessed_matrices(self, fitted, parallel):
        pipeline, holdout = fitted
        matrix = pipeline.preprocessor.transform(holdout)
        chunks = [matrix[i : i + 300] for i in range(0, matrix.shape[0], 300)]
        summary = parallel.validate_stream(iter(chunks))
        assert summary.n_flagged == pipeline.validate(holdout).n_flagged

    def test_wrong_matrix_width_raises_schema_error(self, parallel):
        with pytest.raises(SchemaError):
            parallel.validate_stream(iter([np.zeros((40, 99))]))

    def test_schema_mismatch_rejected_like_one_shot(self, parallel):
        # Same column names, different schema (extra category): workers
        # would silently rebuild under the trained schema — must raise
        # the same SchemaError as the one-shot path instead.
        table = make_table(64, seed=4)
        specs = [
            ColumnSpec(s.name, s.kind, s.description, categories=("lo", "hi", "mid"))
            if s.name == "c"
            else s
            for s in table.schema
        ]
        mismatched = Table(
            TableSchema(specs), {name: table.column(name) for name in table.schema.names}
        )
        with pytest.raises(SchemaError, match="does not match"):
            parallel.validate_table(mismatched)
        with pytest.raises(SchemaError, match="does not match"):
            parallel.validate_stream(iter([mismatched]))

    def test_empty_inputs_rejected_with_unified_message(self, fitted, parallel):
        _, holdout = fitted
        empty = holdout.take(np.arange(0))
        with pytest.raises(ValidationError, match="empty stream"):
            parallel.validate_table(empty)
        with pytest.raises(ValidationError, match="empty stream"):
            parallel.validate_stream(iter([]))

    def test_missing_archive_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            ParallelValidator(tmp_path / "missing.npz")


# ---------------------------------------------------------------------------
# pipeline + service wiring
# ---------------------------------------------------------------------------
class TestPipelineIntegration:
    def test_dquag_validate_workers_matches_and_caches_pool(self, fitted):
        pipeline, holdout = fitted
        one_shot = pipeline.validate(holdout)
        sharded = pipeline.validate(holdout, workers=2)
        np.testing.assert_array_equal(sharded.row_flags, one_shot.row_flags)
        np.testing.assert_array_equal(sharded.cell_errors, one_shot.cell_errors)
        assert sharded.is_problematic == one_shot.is_problematic
        # Second call reuses the cached executor (and its temp archive);
        # a smaller worker count rides the same pool with fewer shards.
        first = pipeline.parallel_validator(2)
        assert pipeline.parallel_validator(2) is first
        assert pipeline.parallel_validator(1) is first
        archive = Path(first.archive)
        assert archive.exists()
        pipeline.validate(holdout, workers=2)
        pipeline.close_parallel()
        assert not archive.exists()  # temp archive reclaimed
        assert pipeline._parallel_validator is None
        # A closed executor refuses reuse with a clear error instead of
        # spawning workers against a reclaimed temp archive.
        with pytest.raises(ReproError, match="closed"):
            first.validate_table(holdout)

    def test_empty_table_with_workers_matches_one_shot(self, fitted):
        # The one-shot report for zero rows is well-defined; workers=N
        # must not turn it into an error (falls through in-process).
        pipeline, holdout = fitted
        empty = holdout.take(np.arange(0))
        one_shot = pipeline.validate(empty)
        sharded = pipeline.validate(empty, workers=2)
        np.testing.assert_array_equal(sharded.row_flags, one_shot.row_flags)
        assert sharded.is_problematic == one_shot.is_problematic
        with ValidationService(shard_workers=2) as service:
            service.add("p", pipeline)
            report = service.validate_sharded("p", empty, workers=2)
            assert report.row_flags.shape == (0,)
            assert service._shard_available == service.shard_workers

    def test_workers_one_stays_in_process(self, fitted):
        pipeline, holdout = fitted
        report = pipeline.validate(holdout, workers=1)
        np.testing.assert_array_equal(report.row_flags, pipeline.validate(holdout).row_flags)
        assert pipeline._parallel_validator is None

    def test_schema_mismatch_rejected_before_dispatch(self, fitted):
        pipeline, _ = fitted
        other = Table(
            TableSchema([ColumnSpec("only", ColumnKind.NUMERIC, "")]), {"only": np.zeros(4)}
        )
        with pytest.raises(SchemaError):
            pipeline.validate(other, workers=2)


class TestServiceSharding:
    def test_validate_sharded_matches_and_respects_budget(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        with ValidationService(shard_workers=2) as service:
            service.register("p", path)
            expected = pipeline.validate(holdout)
            report = service.validate_sharded("p", holdout, workers=2)
            np.testing.assert_array_equal(report.row_flags, expected.row_flags)
            np.testing.assert_array_equal(report.cell_errors, expected.cell_errors)
            # Requests beyond the budget are clamped, not failed.
            report = service.validate_sharded("p", holdout, workers=64)
            np.testing.assert_array_equal(report.row_flags, expected.row_flags)
            assert service._shard_available == service.shard_workers  # fully released
            assert service.pipeline_stats()["p"]["validations"] == 2
            assert service.pipeline_stats()["p"]["rows_validated"] == 2 * holdout.n_rows

    def test_exhausted_budget_falls_back_in_process(self, fitted):
        pipeline, holdout = fitted
        with ValidationService(shard_workers=1) as service:
            service.add("pinned", pipeline)
            report = service.validate_sharded("pinned", holdout, workers=8)
            np.testing.assert_array_equal(
                report.row_flags, pipeline.validate(holdout).row_flags
            )
            assert service._parallel == {}  # no pool was ever built

    def test_stream_sharded_fallback_counts_traffic(self, fitted):
        pipeline, holdout = fitted
        chunks = [
            holdout.take(np.arange(i, min(i + 200, holdout.n_rows)))
            for i in range(0, holdout.n_rows, 200)
        ]
        with ValidationService(shard_workers=1) as service:
            service.add("pinned", pipeline)
            summary = service.validate_stream_sharded("pinned", iter(chunks), workers=4)
            assert summary.n_rows == holdout.n_rows
            assert service.pipeline_stats()["pinned"]["rows_validated"] == holdout.n_rows

    def test_reregister_closes_stale_shard_pools(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        with ValidationService(shard_workers=2) as service:
            service.register("p", path)
            service.validate_sharded("p", holdout, workers=2)
            assert service._parallel
            service.register("p", path)  # same archive, fresh registration
            assert service._parallel == {}

    def test_readd_closes_stale_shard_pools(self, fitted):
        pipeline, holdout = fitted
        with ValidationService(shard_workers=2) as service:
            service.add("pinned", pipeline)
            service.validate_sharded("pinned", holdout, workers=2)
            assert service._parallel
            generation = service._generations["pinned"]
            service.add("pinned", pipeline)  # replacement pipeline
            assert service._parallel == {}
            assert service._generations["pinned"] == generation + 1
