"""End-to-end tests for the asyncio gateway (repro.serve.transport).

A real ``asyncio.start_server`` loop is bound to an ephemeral port with
the micro-batching :class:`RequestScheduler` behind it; requests travel
over actual sockets via the stdlib client. The acceptance bar mirrors
``test_serve``: every report obtained over HTTP — JSON tier or binary
frame tier, coalesced or solo — must be bit-identical to the in-process
result. On top of that: admission control surfaces as 429 +
``Retry-After`` (which the client honors), shutdown drains in-flight
work, ``/v1/metrics`` exports the scheduler gauges, and a
100-concurrent-client stress run produces no 5xx with bounded tail
latency.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import GatewayError
from repro.runtime import ValidationService
from repro.serve import AsyncGateway, Client, ValidationGateway
from repro.serve.cli import DEMO_RECORD, fit_demo_pipeline
from tests.test_serve import make_batch


@pytest.fixture(scope="module")
def served():
    pipeline = fit_demo_pipeline()
    # shard_workers=2 gives the ?workers= sharded path a real budget
    # even on single-core CI runners.
    service = ValidationService(capacity=2, shard_workers=2)
    service.add("demo", pipeline)
    with AsyncGateway(service, port=0, batch_window_ms=2.0) as gateway:
        yield pipeline, gateway, Client(port=gateway.port)
    service.close()


def assert_reports_identical(local, remote, dense=False):
    np.testing.assert_array_equal(remote.row_flags, local.row_flags)
    np.testing.assert_array_equal(remote.cell_flags, local.cell_flags)
    assert remote.threshold == local.threshold
    assert remote.flagged_fraction == local.flagged_fraction
    assert remote.is_problematic == local.is_problematic
    assert remote.feature_names == local.feature_names
    if dense:
        np.testing.assert_array_equal(remote.sample_errors, local.sample_errors)
        np.testing.assert_array_equal(remote.cell_errors, local.cell_errors)
    else:
        np.testing.assert_array_equal(
            remote.sample_errors[local.row_flags], local.sample_errors[local.row_flags]
        )


class TestEndpoints:
    def test_healthz(self, served):
        _, _, client = served
        payload = client.healthz()
        assert payload["status"] == "ok" and payload["pipelines"] == 1

    def test_json_report_identical_to_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 400, seed=5, corrupt=50)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch, include_errors=True)
        assert_reports_identical(local, remote, dense=True)

    def test_frame_tier_identical_to_in_process(self, served):
        pipeline, gateway, _ = served
        frame_client = Client(port=gateway.port, wire="frame")
        batch = make_batch(pipeline, 300, seed=6, corrupt=30)
        local = pipeline.validate(batch)
        remote = frame_client.validate("demo", batch, include_errors=True)
        assert_reports_identical(local, remote, dense=True)

    def test_sharded_validate_over_async_loop(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 600, seed=7, corrupt=80)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch, workers=2, include_errors=True)
        assert_reports_identical(local, remote, dense=True)

    def test_repair_matches_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 300, seed=8, corrupt=40)
        records, summary, report = client.repair("demo", batch, iterations=2)
        local_report = pipeline.validate(batch)
        repaired, local_summary = pipeline.repair(batch, report=local_report, iterations=2)
        assert records == repaired.to_records()
        assert summary.n_cells_repaired == local_summary.n_cells_repaired
        np.testing.assert_array_equal(report.row_flags, local_report.row_flags)

    def test_validate_stream_ndjson_and_frames(self, served):
        pipeline, gateway, client = served
        batch = make_batch(pipeline, 500, seed=9, corrupt=60)
        local = pipeline.validate(batch)
        chunks = [
            batch.take(np.arange(i, min(i + 128, batch.n_rows)))
            for i in range(0, batch.n_rows, 128)
        ]
        summary = client.validate_stream("demo", chunks)
        assert summary.n_rows == batch.n_rows
        assert summary.n_chunks == len(chunks)
        assert summary.n_flagged == local.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, local.flagged_rows)
        frame_client = Client(port=gateway.port, wire="frame")
        framed = frame_client.validate_stream("demo", chunks)
        assert framed.to_dict() == summary.to_dict()

    def test_rules_roundtrip(self, served):
        pipeline, _, client = served
        doc = {
            "rules": [
                {"id": "x-range", "severity": "error",
                 "predicate": {"type": "range", "column": "x", "min": 0.0, "max": 1.0}},
            ],
        }
        try:
            installed = client.set_rules("demo", doc)
            assert [r.id for r in installed.rules] == ["x-range"]
            fetched = client.get_rules("demo")
            assert [r.id for r in fetched.rules] == ["x-range"]
            report = client.validate("demo", make_batch(pipeline, 40, seed=10))
            assert report.rule_report is not None
        finally:
            assert client.delete_rules("demo") in (True, False)
        assert client.get_rules("demo") is None

    def test_bare_curl_style_json_request(self, served):
        _, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/pipelines/demo/validate",
                body=json.dumps({"records": [DEMO_RECORD]}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 200
        assert payload["n_rows"] == 1

    def test_unknown_pipeline_is_404(self, served):
        pipeline, _, client = served
        with pytest.raises(GatewayError) as excinfo:
            client.validate("nope", make_batch(pipeline, 4, seed=0))
        assert excinfo.value.status == 404

    def test_malformed_json_is_400(self, served):
        _, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/pipelines/demo/validate",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
        finally:
            connection.close()
        assert response.status == 400

    def test_metrics_exports_scheduler_gauges(self, served):
        pipeline, _, client = served
        client.validate("demo", make_batch(pipeline, 20, seed=11))
        text = client.metrics()
        for gauge in (
            "repro_scheduler_queue_depth",
            "repro_scheduler_in_flight_batches",
            "repro_scheduler_requests_submitted_total",
            "repro_scheduler_requests_rejected_total",
            "repro_scheduler_batch_fill_ratio",
            'repro_scheduler_batch_size_bucket{le="+Inf"}',
            "repro_scheduler_batch_size_count",
        ):
            assert gauge in text, gauge
        assert "repro_pipeline_validations_total" in text

    def test_monitor_endpoint(self, served):
        pipeline, _, client = served
        client.validate("demo", make_batch(pipeline, 30, seed=12))
        snapshot = client.monitor("demo")
        assert snapshot.total_observations >= 1
        assert snapshot.total_rows >= 30


class TestCoalescing:
    def test_concurrent_requests_coalesce_and_stay_exact(self, served):
        pipeline, gateway, _ = served
        tables = [make_batch(pipeline, 6 + i, seed=20 + i, corrupt=i % 3) for i in range(16)]
        local = [pipeline.validate(t) for t in tables]
        before = gateway.scheduler.stats_snapshot()
        with ThreadPoolExecutor(max_workers=16) as pool:
            client = Client(port=gateway.port)
            remote = list(
                pool.map(lambda t: client.validate("demo", t, include_errors=True), tables)
            )
        for a, b in zip(local, remote):
            assert_reports_identical(a, b, dense=True)
        after = gateway.scheduler.stats_snapshot()
        assert after.completed - before.completed == len(tables)
        # 16 concurrent small requests under a 2ms window: at least one
        # slab must have fused more than one request.
        assert after.batches - before.batches < len(tables)


class TestAdmissionControl:
    def test_full_queue_yields_429_with_retry_after(self):
        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2)
        service.add("demo", pipeline)
        gateway = AsyncGateway(
            service, port=0, batch_window_ms=60_000.0, max_queue_depth=1
        )
        gateway.start()
        payload = json.dumps(
            {"records": [DEMO_RECORD] * 4}
        ).encode()

        def occupy():
            connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=120)
            try:
                connection.request(
                    "POST", "/v1/pipelines/demo/validate", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                connection.getresponse().read()
            except Exception:
                pass  # torn down by the gateway's shutdown below
            finally:
                connection.close()

        occupier = threading.Thread(target=occupy, daemon=True)
        try:
            occupier.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if gateway.scheduler.stats_snapshot().queue_depth >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("occupier request never reached the scheduler queue")
            connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
            try:
                connection.request(
                    "POST", "/v1/pipelines/demo/validate", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 429
                retry_after = response.getheader("Retry-After")
                assert retry_after is not None and int(retry_after) >= 1
            finally:
                connection.close()
            assert gateway.scheduler.stats_snapshot().rejected >= 1
        finally:
            gateway.close(drain_timeout=0.5)
            occupier.join(timeout=10)
            service.close()

    def test_client_retries_once_on_429_honoring_retry_after(self):
        calls = {"n": 0}
        started = time.monotonic()

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise GatewayError(
                    "gateway error 429: queue full", status=429, retry_after=0.05
                )
            return "ok"

        assert Client._retry_once_on_503(flaky) == "ok"
        assert calls["n"] == 2
        assert time.monotonic() - started >= 0.05

    def test_client_caps_hostile_retry_after(self, monkeypatch):
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise GatewayError("gateway error 429: queue full",
                                   status=429, retry_after=10_000.0)
            return "ok"

        assert Client._retry_once_on_503(flaky) == "ok"
        assert slept == [Client.RETRY_AFTER_CAP]

    def test_client_gives_up_after_second_429(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise GatewayError("gateway error 429: queue full", status=429, retry_after=0.0)

        with pytest.raises(GatewayError):
            Client._retry_once_on_503(dead)
        assert calls["n"] == 2


class TestShutdown:
    def test_close_is_idempotent_and_refuses_new_connections(self):
        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2)
        service.add("demo", pipeline)
        gateway = AsyncGateway(service, port=0)
        gateway.start()
        port = gateway.port
        client = Client(port=port)
        assert client.healthz()["status"] == "ok"
        gateway.close()
        gateway.close()  # second close is a no-op, not a hang
        with pytest.raises((ConnectionError, OSError, GatewayError)):
            Client(port=port, timeout=2.0).healthz()
        service.close()

    def test_close_drains_in_flight_request(self):
        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2)
        service.add("demo", pipeline)
        gateway = AsyncGateway(service, port=0, batch_window_ms=0.0)
        gateway.start()
        batch = make_batch(pipeline, 50_000, seed=1)
        result: dict = {}

        def request():
            try:
                result["report"] = Client(port=gateway.port, timeout=60).validate(
                    "demo", batch
                )
            except Exception as exc:  # pragma: no cover - failure detail
                result["error"] = exc

        worker = threading.Thread(target=request)
        worker.start()
        time.sleep(0.05)  # let the request reach the loop
        gateway.close()  # default drain: must not sever the in-flight reply
        worker.join(timeout=60)
        service.close()
        assert "error" not in result, result.get("error")
        assert result["report"].row_flags.shape == (batch.n_rows,)

    def test_threaded_gateway_drains_before_socket_close(self):
        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2)
        service.add("demo", pipeline)
        gateway = ValidationGateway(service, port=0)
        gateway.start()
        batch = make_batch(pipeline, 50_000, seed=2)
        result: dict = {}

        def request():
            try:
                result["report"] = Client(port=gateway.port, timeout=60).validate(
                    "demo", batch
                )
            except Exception as exc:  # pragma: no cover - failure detail
                result["error"] = exc

        worker = threading.Thread(target=request)
        worker.start()
        time.sleep(0.05)
        gateway.close()
        worker.join(timeout=60)
        service.close()
        assert "error" not in result, result.get("error")
        assert result["report"].row_flags.shape == (batch.n_rows,)

    def test_threaded_close_without_serving_does_not_hang(self):
        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2)
        service.add("demo", pipeline)
        gateway = ValidationGateway(service, port=0)
        gateway.close()  # never served: shutdown() must be skipped
        service.close()


class TestClientPooling:
    """Bugfix pins for the persistent-connection client: one keep-alive
    socket per thread reused across requests, transparent reconnect
    when the parked socket has gone stale, explicit ``close()``."""

    def test_connection_reused_across_requests(self, served):
        pipeline, gateway, _ = served
        client = Client(port=gateway.port)
        try:
            client.healthz()
            first = client._local.connection
            assert first is not None
            client.validate("demo", make_batch(pipeline, 8, seed=40))
            client.healthz()
            assert client._local.connection is first  # same parked socket
        finally:
            client.close()

    def test_stale_parked_socket_reconnects_transparently(self, served):
        pipeline, gateway, _ = served
        client = Client(port=gateway.port)
        try:
            client.healthz()
            parked = client._local.connection
            # Simulate the server reaping the idle keep-alive socket: the
            # next write on it dies with EPIPE/ECONNRESET.
            parked.sock.shutdown(socket.SHUT_RDWR)
            report = client.validate("demo", make_batch(pipeline, 8, seed=41))
            assert report.row_flags.shape == (8,)
            assert client._local.connection is not parked  # fresh socket
        finally:
            client.close()

    def test_close_then_reuse_reopens(self, served):
        pipeline, gateway, _ = served
        client = Client(port=gateway.port)
        client.healthz()
        client.close()
        assert getattr(client._local, "connection", None) is None
        assert client.healthz()["status"] == "ok"  # reopens on demand
        client.close()

    def test_context_manager_closes_pool(self, served):
        _, gateway, _ = served
        with Client(port=gateway.port) as client:
            client.healthz()
            assert client._conns
        assert not client._conns

    def test_threads_get_independent_connections(self, served):
        _, gateway, _ = served
        client = Client(port=gateway.port)
        conns = {}
        try:

            def probe(key):
                client.healthz()
                conns[key] = client._local.connection

            threads = [
                threading.Thread(target=probe, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert len({id(c) for c in conns.values()}) == 3
        finally:
            client.close()


class TestDrainingHealth:
    def test_healthz_reports_draining_with_503(self):
        """Bugfix pin: once drain begins, ``/v1/healthz`` must say so
        (503 + ``"draining"``) so load balancers stop routing here.
        Both transports share ``health_payload``."""
        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2)
        service.add("demo", pipeline)
        for factory in (AsyncGateway, ValidationGateway):
            gateway = factory(service, port=0)
            gateway.start()
            try:
                assert Client(port=gateway.port).healthz()["status"] == "ok"
                gateway._draining = True  # the close() drain window
                conn = http.client.HTTPConnection("127.0.0.1", gateway.port)
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                payload = json.loads(response.read())
                conn.close()
                assert response.status == 503
                assert payload["status"] == "draining"
                gateway._draining = False
            finally:
                gateway.close()
        service.close()

    def test_retry_after_header_is_rfc_whole_seconds(self):
        from repro.serve.gateway import format_retry_after

        assert format_retry_after(0.001) == "1"  # never "0": that invites
        assert format_retry_after(0.8) == "1"  # an immediate stampede
        assert format_retry_after(2.0) == "2"
        assert format_retry_after(2.2) == "3"  # round up, not down


class TestStress:
    N_CLIENTS = 100
    REQUESTS_PER_CLIENT = 3

    def test_hundred_concurrent_clients_no_5xx_bounded_p99(self, served):
        pipeline, gateway, _ = served
        batch = make_batch(pipeline, 16, seed=33)
        local = pipeline.validate(batch)
        latencies: list[float] = []
        failures: list[BaseException] = []
        lock = threading.Lock()
        barrier = threading.Barrier(self.N_CLIENTS)

        def hammer():
            client = Client(port=gateway.port, timeout=60)
            barrier.wait(timeout=60)
            for _ in range(self.REQUESTS_PER_CLIENT):
                started = time.monotonic()
                try:
                    report = client.validate("demo", batch)
                except BaseException as exc:
                    with lock:
                        failures.append(exc)
                    return
                elapsed = time.monotonic() - started
                with lock:
                    latencies.append(elapsed)
                assert report.is_problematic == local.is_problematic

        threads = [threading.Thread(target=hammer) for _ in range(self.N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        server_errors = [
            exc for exc in failures
            if isinstance(exc, GatewayError) and (exc.status or 0) >= 500
        ]
        assert not server_errors, server_errors[:3]
        assert not failures, failures[:3]
        assert len(latencies) == self.N_CLIENTS * self.REQUESTS_PER_CLIENT
        latencies.sort()
        p99 = latencies[int(len(latencies) * 0.99) - 1]
        # Generous CI bound: the point is no collapse under concurrency,
        # not an absolute latency SLO.
        assert p99 < 30.0, f"p99 {p99:.2f}s"
        stats = gateway.scheduler.stats_snapshot()
        assert stats.failed == 0
        assert stats.mean_batch_size > 1.0  # the stampede actually coalesced
