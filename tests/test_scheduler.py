"""Unit tests for the dynamic micro-batching request scheduler.

The acceptance bar: a report resolved through a coalesced batch must be
**bit-identical** to the report ``ValidationService.validate`` returns
for the same table alone — flags, errors, threshold, and the
per-request batch verdict. Plus the scheduling contract itself:
admission control (bounded queues → :class:`AdmissionError`), QoS
weighting, drain-on-close, and the stats counters ``/v1/metrics``
exports.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future

import numpy as np
import pytest

from repro.data import Table
from repro.exceptions import AdmissionError, ReproError
from repro.runtime import ValidationService
from repro.serve.scheduler import (
    BATCH_SIZE_BUCKETS,
    RequestScheduler,
    _Pending,
    split_fused_report,
)
from tests.test_serve import fit_demo_pipeline, make_batch


@pytest.fixture(scope="module")
def demo():
    pipeline = fit_demo_pipeline()
    service = ValidationService(capacity=2)
    service.add("demo", pipeline)
    yield pipeline, service
    service.close()


def assert_reports_identical(a, b):
    np.testing.assert_array_equal(a.row_flags, b.row_flags)
    np.testing.assert_array_equal(a.cell_flags, b.cell_flags)
    np.testing.assert_array_equal(a.sample_errors, b.sample_errors)
    np.testing.assert_array_equal(a.cell_errors, b.cell_errors)
    assert a.threshold == b.threshold
    assert a.flagged_fraction == b.flagged_fraction
    assert a.is_problematic == b.is_problematic
    assert a.feature_names == b.feature_names


class TestCoalescingParity:
    def test_fused_reports_bit_identical_to_solo(self, demo):
        pipeline, service = demo
        tables = [make_batch(pipeline, 7 + i, seed=i, corrupt=i % 3) for i in range(10)]
        solo = [service.validate("demo", t) for t in tables]
        with RequestScheduler(service, batch_window_ms=25.0, max_batch_rows=10_000) as sched:
            futures = sched.submit_many([("demo", t) for t in tables])
            fused = [f.result(timeout=30) for f in futures]
            stats = sched.stats_snapshot()
        for a, b in zip(solo, fused):
            assert_reports_identical(a, b)
        # The point of the exercise: requests actually coalesced.
        assert stats.batches < len(tables)
        assert stats.completed == len(tables)

    def test_split_fused_report_recomputes_verdict_per_span(self, demo):
        pipeline, service = demo
        # One heavily corrupted request + one clean request: fused, the
        # batch verdict would smear; split, each span gets its own.
        dirty = make_batch(pipeline, 50, seed=1, corrupt=40)
        clean = make_batch(pipeline, 50, seed=2)
        fused_table = Table.concat([dirty, clean])
        validator = pipeline._require_validator()
        fused_report = validator.validate(fused_table)
        parts = split_fused_report(fused_report, [(0, 50), (50, 100)], validator.rule)
        solo_dirty = validator.validate(dirty)
        solo_clean = validator.validate(clean)
        assert parts[0].flagged_fraction == solo_dirty.flagged_fraction
        assert parts[0].is_problematic == solo_dirty.is_problematic
        assert parts[1].flagged_fraction == solo_clean.flagged_fraction
        assert parts[1].is_problematic == solo_clean.is_problematic

    def test_singleton_batch_takes_plain_validate_path(self, demo):
        pipeline, service = demo
        table = make_batch(pipeline, 64, seed=9)
        solo = service.validate("demo", table)
        with RequestScheduler(service, batch_window_ms=0.0) as sched:
            report = sched.submit("demo", table).result(timeout=30)
        assert_reports_identical(solo, report)

    def test_unique_rule_stays_request_scoped(self, demo):
        pipeline, service = demo
        # 'unique' is a batch-scoped predicate: values duplicated *across*
        # two coalesced requests must not be flagged, because each request
        # alone contains no duplicates.
        service.set_rules("demo", {
            "rules": [{"id": "x-unique", "severity": "warn",
                       "predicate": {"type": "unique", "column": "x"}}],
        })
        try:
            table = make_batch(pipeline, 20, seed=3)
            solo = service.validate("demo", table)
            with RequestScheduler(service, batch_window_ms=25.0) as sched:
                # The same table twice: every x value duplicates across
                # requests, none within one.
                futures = sched.submit_many([("demo", table), ("demo", table)])
                reports = [f.result(timeout=30) for f in futures]
                assert sched.stats_snapshot().batches == 1
            for report in reports:
                assert report.rule_report is not None
                assert report.rule_report.to_dict() == solo.rule_report.to_dict()
                assert_reports_identical(solo, report)
        finally:
            service.clear_rules("demo")

    def test_service_counters_see_per_request_traffic(self, demo):
        pipeline, service = demo
        before = service.stats_snapshot().pipelines["demo"]
        tables = [make_batch(pipeline, 10, seed=i) for i in range(4)]
        with RequestScheduler(service, batch_window_ms=25.0) as sched:
            for f in sched.submit_many([("demo", t) for t in tables]):
                f.result(timeout=30)
        after = service.stats_snapshot().pipelines["demo"]
        assert after["validations"] - before["validations"] == 4
        assert after["rows_validated"] - before["rows_validated"] == 40


class TestAdmission:
    def test_full_queue_raises_admission_error(self, demo):
        pipeline, service = demo
        table = make_batch(pipeline, 5, seed=0)
        # A huge window keeps requests parked in the queue, so the bound
        # is observable without racing the dispatcher.
        sched = RequestScheduler(
            service, batch_window_ms=60_000.0, max_queue_depth=2
        )
        try:
            first = sched.submit("demo", table)
            second = sched.submit("demo", table)
            with pytest.raises(AdmissionError) as excinfo:
                sched.submit("demo", table)
            assert excinfo.value.retry_after > 0
            assert sched.stats_snapshot().rejected == 1
        finally:
            sched.close()  # drain: the window stops applying
        assert first.result(timeout=5) is not None
        assert second.result(timeout=5) is not None

    def test_submit_after_close_raises(self, demo):
        pipeline, service = demo
        sched = RequestScheduler(service)
        sched.close()
        with pytest.raises(ReproError):
            sched.submit("demo", make_batch(pipeline, 3, seed=0))

    def test_close_without_drain_fails_queued_futures(self, demo):
        pipeline, service = demo
        table = make_batch(pipeline, 5, seed=0)
        sched = RequestScheduler(service, batch_window_ms=60_000.0)
        future = sched.submit("demo", table)
        sched.close(drain=False)
        with pytest.raises(ReproError):
            future.result(timeout=5)

    def test_retry_after_counts_in_flight_slabs(self, demo):
        """Bugfix pin: batches already on slab threads occupy workers
        ahead of the queue, so the Retry-After hint must grow with
        ``_in_flight`` — a retry cannot land before they finish."""
        pipeline, service = demo
        sched = RequestScheduler(service, batch_window_ms=100.0, max_queue_depth=8)
        try:
            with sched._cv:
                idle = sched._retry_after_locked()
                sched._in_flight = 3
                busy = sched._retry_after_locked()
                sched._in_flight = 0
            assert idle >= sched.batch_window
            assert busy == pytest.approx(idle + 3 * max(sched.batch_window, 0.05))
        finally:
            sched.close()

    def test_row_ceiling_dispatches_early(self, demo):
        pipeline, service = demo
        # Two 20-row requests fill the 40-row slab well before the (long)
        # window expires: the batch must dispatch on the row trigger.
        sched = RequestScheduler(
            service, batch_window_ms=60_000.0, max_batch_rows=40
        )
        try:
            futures = [
                sched.submit("demo", make_batch(pipeline, 20, seed=i)) for i in range(2)
            ]
            for f in futures:
                assert f.result(timeout=10) is not None
            assert sched.stats_snapshot().batches == 1
        finally:
            sched.close()


class TestQoS:
    def _park(self, sched, name, table, enqueued_at):
        with sched._cv:
            sched._queues.setdefault(name, deque()).append(
                _Pending(table, Future(), enqueued_at)
            )

    def test_weight_breaks_equal_wait_ties(self, demo):
        pipeline, service = demo
        table = make_batch(pipeline, 4, seed=0)
        # The pinned clock keeps the live dispatcher seeing zero wait, so
        # the parked entries stay queued while _select_ready is probed.
        sched = RequestScheduler(
            service, batch_window_ms=60_000.0, qos_weights={"gold": 2.0},
            clock=lambda: 0.0,
        )
        try:
            self._park(sched, "bronze", table, enqueued_at=0.0)
            self._park(sched, "gold", table, enqueued_at=0.0)
            with sched._cv:
                # Both waited past the window (100s > 60s), both
                # dispatchable at equal wait; gold's weight doubles its
                # score and wins.
                assert sched._select_ready(now=100.0) == "gold"
        finally:
            sched.close(drain=False)

    def test_longer_wait_beats_weight(self, demo):
        pipeline, service = demo
        table = make_batch(pipeline, 4, seed=0)
        sched = RequestScheduler(
            service, batch_window_ms=1.0, qos_weights={"gold": 2.0},
            clock=lambda: 0.0,
        )
        try:
            # bronze has waited 10x gold's wait (plus the window term):
            # weight 2 cannot starve it.
            self._park(sched, "bronze", table, enqueued_at=0.0)
            self._park(sched, "gold", table, enqueued_at=90.0)
            with sched._cv:
                assert sched._select_ready(now=100.0) == "bronze"
        finally:
            sched.close(drain=False)


class TestStats:
    def test_batch_size_histogram_is_cumulative(self, demo):
        pipeline, service = demo
        tables = [make_batch(pipeline, 5, seed=i) for i in range(3)]
        with RequestScheduler(service, batch_window_ms=25.0) as sched:
            for f in sched.submit_many([("demo", t) for t in tables]):
                f.result(timeout=30)
            stats = sched.stats_snapshot()
        hist = stats.batch_size_hist
        assert sorted(hist) == sorted(BATCH_SIZE_BUCKETS)
        counts = [hist[bound] for bound in BATCH_SIZE_BUCKETS]
        assert counts == sorted(counts)  # cumulative: monotone in the bound
        assert counts[-1] == stats.batches
        assert 0.0 < stats.fill_ratio <= 1.0
        assert stats.mean_batch_size >= 1.0
        payload = stats.to_dict()
        assert payload["completed"] == 3
        assert payload["rejected"] == 0

    def test_poisoned_request_fails_alone(self, demo):
        import unittest.mock as mock

        pipeline, service = demo
        good = make_batch(pipeline, 5, seed=0)
        marker = make_batch(pipeline, 5, seed=1)
        original_validate = service.validate

        def flaky_validate(name, table):
            if table is marker:
                raise ReproError("poisoned request")
            return original_validate(name, table)

        sched = RequestScheduler(service, batch_window_ms=25.0)
        original_batch = sched._validate_batch

        def flaky_batch(name, batch):
            # Force the fused slab to fail so the per-request isolation
            # fallback runs; singletons keep the real path.
            if len(batch) > 1:
                raise ReproError("fused slab failed")
            return original_batch(name, batch)

        try:
            with mock.patch.object(service, "validate", side_effect=flaky_validate):
                with mock.patch.object(sched, "_validate_batch", side_effect=flaky_batch):
                    good_future, bad_future = sched.submit_many(
                        [("demo", good), ("demo", marker)]
                    )
                    report = good_future.result(timeout=30)
                    with pytest.raises(ReproError, match="poisoned request"):
                        bad_future.result(timeout=30)
            stats = sched.stats_snapshot()
        finally:
            sched.close()
        assert report.row_flags.shape == (5,)
        assert stats.failed == 1
        assert stats.completed == 1


class TestServiceIntegration:
    def test_attach_scheduler_routes_submit(self, demo):
        pipeline, service = demo
        table = make_batch(pipeline, 16, seed=4)
        solo = service.validate("demo", table)
        sched = RequestScheduler(service, batch_window_ms=5.0)
        try:
            service.attach_scheduler(sched)
            report = service.submit("demo", table).result(timeout=30)
            assert sched.stats_snapshot().submitted >= 1
            assert_reports_identical(solo, report)
        finally:
            service.attach_scheduler(None)
            sched.close()

    def test_concurrent_submitters_all_resolve(self, demo):
        pipeline, service = demo
        tables = [make_batch(pipeline, 8, seed=i) for i in range(24)]
        solo = [service.validate("demo", t) for t in tables]
        results: "list" = [None] * len(tables)
        with RequestScheduler(service, batch_window_ms=10.0) as sched:
            def worker(i):
                results[i] = sched.submit("demo", tables[i]).result(timeout=30)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(tables))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        for a, b in zip(solo, results):
            assert_reports_identical(a, b)
