"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import compute_sample_weights, flag_feature_cells, ThresholdCalibration
from repro.data import LabelEncoder, MinMaxNormalizer
from repro.errors import qwerty_typo
from repro.graph import FeatureGraph
from repro.metrics import evaluate_predictions
from repro.nn import Tensor

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def arrays(shape, elements=finite_floats):
    return hnp.arrays(np.float64, shape, elements=elements)


class TestTensorProperties:
    @given(arrays((3, 4)), arrays((3, 4)))
    @settings(max_examples=50, deadline=None)
    def test_add_matches_numpy(self, a, b):
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).numpy(), a + b)

    @given(arrays((3, 4)), arrays((4, 2)))
    @settings(max_examples=50, deadline=None)
    def test_matmul_matches_numpy(self, a, b):
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b, rtol=1e-9, atol=1e-6)

    @given(arrays((4, 5)))
    @settings(max_examples=50, deadline=None)
    def test_softmax_rows_sum_to_one(self, x):
        out = Tensor(x).softmax(axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
        assert (out >= 0).all()

    @given(arrays((6,)))
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @given(arrays((3, 4)))
    @settings(max_examples=50, deadline=None)
    def test_relu_is_idempotent(self, x):
        once = Tensor(x).relu().numpy()
        twice = Tensor(once).relu().numpy()
        np.testing.assert_array_equal(once, twice)

    @given(arrays((2, 3)), st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_mean_linear_in_scale(self, x, k):
        scaled = (Tensor(x) * float(k)).mean().numpy()
        np.testing.assert_allclose(scaled, k * Tensor(x).mean().numpy(), rtol=1e-9, atol=1e-9)


class TestEncoderProperties:
    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_label_encoder_roundtrip(self, values):
        encoder = LabelEncoder().fit(values)
        decoded = encoder.inverse_transform(encoder.transform(values))
        assert list(decoded) == [str(v) for v in values]

    @given(st.lists(finite_floats, min_size=2, max_size=50).filter(lambda v: max(v) > min(v)))
    @settings(max_examples=50, deadline=None)
    def test_minmax_roundtrip(self, values):
        array = np.array(values)
        normalizer = MinMaxNormalizer().fit(array)
        restored = normalizer.inverse_transform(normalizer.transform(array))
        np.testing.assert_allclose(restored, array, rtol=1e-9, atol=1e-6)

    @given(st.lists(finite_floats, min_size=2, max_size=50).filter(lambda v: max(v) > min(v)))
    @settings(max_examples=50, deadline=None)
    def test_minmax_fitted_range_maps_into_unit_interval(self, values):
        array = np.array(values)
        scaled = MinMaxNormalizer().fit(array).transform(array)
        assert scaled.min() >= -1e-12 and scaled.max() <= 1.0 + 1e-12


class TestWeightingProperties:
    @given(hnp.arrays(np.float64, st.integers(1, 60),
                      elements=st.floats(min_value=0, max_value=100, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_weights_positive_and_mean_one(self, errors):
        weights = compute_sample_weights(errors)
        assert (weights > 0).all()
        assert weights.mean() == pytest.approx(1.0)

    @given(hnp.arrays(np.float64, st.integers(2, 60),
                      elements=st.floats(min_value=0, max_value=100, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_weights_anti_monotone_in_error(self, errors):
        weights = compute_sample_weights(errors)
        order = np.argsort(errors)
        sorted_weights = weights[order]
        assert all(sorted_weights[i] >= sorted_weights[i + 1] - 1e-12 for i in range(len(errors) - 1))


class TestThresholdProperties:
    @given(hnp.arrays(np.float64, st.integers(5, 200),
                      elements=st.floats(min_value=0, max_value=1e6, allow_nan=False)),
           st.floats(min_value=50.0, max_value=99.0))
    @settings(max_examples=50, deadline=None)
    def test_flagged_fraction_bounded_by_percentile(self, errors, percentile):
        calib = ThresholdCalibration.from_clean_errors(errors, percentile=percentile)
        flagged = calib.flag_rows(errors).mean()
        # Percentile interpolation on small samples can place the
        # threshold one rank low; allow the discrete 1/n overshoot.
        assert flagged <= (100.0 - percentile) / 100.0 + 1.0 / errors.size + 1e-9

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 20), st.integers(2, 15)),
                      elements=st.floats(min_value=0, max_value=100, allow_nan=False)),
           st.floats(min_value=1.0, max_value=6.0))
    @settings(max_examples=50, deadline=None)
    def test_cell_flags_subset_of_row_mask(self, errors, sigma):
        row_mask = np.zeros(errors.shape[0], dtype=bool)
        row_mask[:: 2] = True
        flags = flag_feature_cells(errors, row_mask, sigma=sigma)
        assert not flags[~row_mask].any()


class TestGraphProperties:
    @given(st.integers(2, 12), st.data())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_always_symmetric(self, n, data):
        features = [f"f{i}" for i in range(n)]
        n_edges = data.draw(st.integers(0, n * (n - 1) // 2))
        pairs = [(features[i], features[j]) for i in range(n) for j in range(i + 1, n)]
        chosen = data.draw(st.permutations(pairs))[:n_edges]
        graph = FeatureGraph(features, chosen)
        adjacency = graph.adjacency()
        np.testing.assert_array_equal(adjacency, adjacency.T)
        assert graph.n_edges == len(set(chosen))

    @given(st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_isolate_fix_leaves_no_isolates(self, n):
        features = [f"f{i}" for i in range(n)]
        graph = FeatureGraph(features, [(features[0], features[1])])
        fixed = graph.with_isolated_connected()
        assert not fixed.isolated_features()


class TestQwertyProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=1, max_size=15),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_typo_always_differs_and_preserves_length(self, word, seed):
        rng = np.random.default_rng(seed)
        out = qwerty_typo(word, rng)
        assert out != word
        assert len(out) == len(word)


class TestMetricsProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=100), st.data())
    @settings(max_examples=50, deadline=None)
    def test_accuracy_bounds_and_confusion_sum(self, labels, data):
        predictions = data.draw(st.lists(st.booleans(), min_size=len(labels), max_size=len(labels)))
        metrics = evaluate_predictions(labels, predictions)
        assert 0.0 <= metrics.accuracy <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert metrics.n_total == len(labels)

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_is_perfect(self, labels):
        metrics = evaluate_predictions(labels, labels)
        assert metrics.accuracy == 1.0
        assert metrics.false_positives == 0 and metrics.false_negatives == 0
