"""Golden wire-protocol fixtures: the JSON forms are frozen on disk.

Every ``repro.api`` protocol kind has a canonical payload checked in
under ``tests/golden/``. These tests fail loudly when an encoder's
output for a fixed object no longer matches its golden file — the
signal that a wire-format change happened. Additive changes (new
optional fields) are allowed *deliberately*: bump
``repro.api.protocol.CODEC_REVISION``, regenerate the fixtures, and
review the diff. Renames/retypes/removals require a ``SCHEMA_VERSION``
bump instead.

Regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py

then inspect ``git diff tests/golden/`` before committing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.api import protocol
from repro.api.requests import RepairRequest, ValidateRequest
from repro.baselines.base import BatchVerdict
from repro.core.repair import RepairSummary
from repro.core.thresholds import ThresholdCalibration
from repro.core.validator import ValidationReport
from repro.experiments.reporting import ResultTable
from repro.monitor import ColumnDrift, DriftAlert, MonitorSnapshot
from repro.runtime.service import ServiceStats
from repro.rules import RuleOutcome, RuleReport, RuleSet
from repro.runtime.streaming import PartialReport, StreamSummary

GOLDEN_DIR = Path(__file__).parent / "golden"

BREAKAGE_HINT = (
    "\n\nThe wire encoding of {name!r} changed. If this is intentional and "
    "additive, bump CODEC_REVISION and regenerate the goldens "
    "(REPRO_REGEN_GOLDEN=1); if it renames/retypes/removes fields, it is a "
    "schema-breaking change and needs a SCHEMA_VERSION bump."
)


def canonical(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# deterministic sample objects, one per protocol kind
# ---------------------------------------------------------------------------
def sample_report() -> ValidationReport:
    return ValidationReport(
        sample_errors=np.array([0.5, 3.0, 0.25, 0.125], dtype=np.float64),
        cell_errors=np.array(
            [[0.25, 0.25], [5.0, 1.0], [0.125, 0.125], [0.0625, 0.0625]], dtype=np.float64
        ),
        row_flags=np.array([False, True, False, False]),
        cell_flags=np.array([[False, False], [True, False], [False, False], [False, False]]),
        threshold=1.5,
        flagged_fraction=0.25,
        is_problematic=True,
        feature_names=["a", "b"],
    )


def sample_partial() -> PartialReport:
    return PartialReport(
        offset=8,
        n_rows=3,
        sample_errors=np.array([0.5, 2.0, 0.25], dtype=np.float64),
        row_flags=np.array([False, True, False]),
        cell_rows=np.array([1], dtype=np.int64),
        cell_cols=np.array([0], dtype=np.int64),
        cell_errors=np.array([[0.25, 0.25], [3.0, 1.0], [0.125, 0.125]], dtype=np.float64),
        cell_flags=np.array([[False, False], [True, False], [False, False]]),
        timestamp=1700000000.5,
    )


def sample_stream_summary() -> StreamSummary:
    return StreamSummary(
        n_rows=4096,
        n_chunks=4,
        n_flagged=12,
        flagged_rows=np.array([7, 1030, 2050], dtype=np.int64),
        threshold=1.5,
        flagged_fraction=0.0029296875,
        is_problematic=False,
        flagged_cells_by_column={"a": 8, "b": 4},
        mean_sample_error=0.125,
        max_sample_error=6.5,
        first_timestamp=1700000000.0,
        last_timestamp=1700000360.0,
    )


def sample_monitor_snapshot() -> MonitorSnapshot:
    return MonitorSnapshot(
        window_capacity=32,
        window_chunks=4,
        window_rows=4096,
        total_observations=40,
        total_rows=40960,
        total_alerts=2,
        first_timestamp=1700000000.0,
        last_timestamp=1700000600.0,
        flag_rate_ewma=0.125,
        flag_rate_center=0.05,
        flag_rate_limit=0.0625,
        flag_rate_alarm=True,
        psi_threshold=0.25,
        js_threshold=0.1,
        columns=[
            ColumnDrift(name="a", kind="numeric", psi=0.5, js=0.25, drifted=True),
            ColumnDrift(name="b", kind="categorical", psi=0.0625, js=0.03125, drifted=False),
        ],
        alerts=[sample_drift_alert()],
    )


def sample_drift_alert() -> DriftAlert:
    return DriftAlert(
        metric="psi",
        column="a",
        value=0.5,
        threshold=0.25,
        message="column 'a' drifted: psi=0.5000 exceeds 0.2500 over 4096 window rows",
        timestamp=1700000300.0,
    )


def sample_ruleset() -> RuleSet:
    return RuleSet.from_payload(
        {
            "name": "golden-checks",
            "revision": 3,
            "rules": [
                {"id": "a-range", "severity": "error",
                 "predicate": {"type": "range", "column": "a", "min": 0, "max": 10}},
                {"id": "b-known", "severity": "warn",
                 "predicate": {"type": "in_set", "column": "b", "values": ["lo", "hi"]}},
                {"id": "a-unique", "severity": "info",
                 "predicate": {"type": "unique", "column": "a"}},
            ],
        }
    )


def sample_rule_report() -> RuleReport:
    return RuleReport(
        n_rows=4,
        feature_names=["a", "b"],
        cell_rows=np.array([1, 1, 3], dtype=np.int64),
        cell_cols=np.array([0, 1, 0], dtype=np.int64),
        cell_severity=np.array([2, 1, 0], dtype=np.int64),
        outcomes=[
            RuleOutcome(rule_id="a-range", scope="column", severity="error",
                        columns=("a",), n_cells=1, n_rows=1),
            RuleOutcome(rule_id="b-known", scope="column", severity="warn",
                        columns=("b",), n_cells=1, n_rows=1),
            RuleOutcome(rule_id="a-unique", scope="table", severity="info",
                        columns=("a",), n_cells=1, n_rows=1),
        ],
    )


def sample_fused_report() -> ValidationReport:
    report = sample_report()
    report.rule_report = sample_rule_report()
    return report


def build_cases() -> dict:
    """name → (payload, decode-then-reencode fn or None)."""
    report = sample_report()
    return {
        "validation_report_dense": (
            protocol.report_to_dict(report, errors="dense"),
            lambda p: protocol.report_to_dict(protocol.report_from_dict(p), errors="dense"),
        ),
        "validation_report_sparse": (
            protocol.report_to_dict(report, errors="sparse"),
            lambda p: protocol.report_to_dict(protocol.report_from_dict(p), errors="sparse"),
        ),
        "validation_report_none": (
            protocol.report_to_dict(report, errors="none"),
            lambda p: protocol.report_to_dict(protocol.report_from_dict(p), errors="none"),
        ),
        "validation_report_rules": (
            # fused form: the GNN payload plus the additive rule_report key
            protocol.report_to_dict(sample_fused_report(), errors="dense"),
            lambda p: protocol.report_to_dict(protocol.report_from_dict(p), errors="dense"),
        ),
        "rule_set": (
            protocol.rule_set_to_dict(sample_ruleset()),
            lambda p: protocol.rule_set_to_dict(protocol.rule_set_from_dict(p)),
        ),
        "rule_report": (
            protocol.rule_report_to_dict(sample_rule_report()),
            lambda p: protocol.rule_report_to_dict(protocol.rule_report_from_dict(p)),
        ),
        "verdict_summary": (protocol.summary_dict(report), None),
        "batch_verdict": (
            protocol.verdict_to_dict(
                BatchVerdict(
                    is_problematic=True,
                    flagged_rows=np.array([1, 3], dtype=np.int64),
                    score=0.5,
                    details={"threshold": 1.5, "note": "golden"},
                )
            ),
            lambda p: protocol.verdict_to_dict(protocol.verdict_from_dict(p)),
        ),
        "repair_summary": (
            protocol.repair_summary_to_dict(
                RepairSummary(n_rows_touched=2, n_cells_repaired=3, repairs_by_column={"a": 2, "b": 1})
            ),
            lambda p: protocol.repair_summary_to_dict(protocol.repair_summary_from_dict(p)),
        ),
        "partial_report": (
            protocol.partial_report_to_dict(sample_partial()),
            lambda p: protocol.partial_report_to_dict(protocol.partial_report_from_dict(p)),
        ),
        "stream_summary": (
            protocol.stream_summary_to_dict(sample_stream_summary()),
            lambda p: protocol.stream_summary_to_dict(protocol.stream_summary_from_dict(p)),
        ),
        "threshold_calibration": (
            protocol.calibration_to_dict(
                ThresholdCalibration(
                    threshold=1.5, percentile=95.0, clean_mean=0.25,
                    clean_p50=0.125, clean_max=2.0, n_samples=500,
                )
            ),
            lambda p: protocol.calibration_to_dict(protocol.calibration_from_dict(p)),
        ),
        "service_stats": (
            protocol.service_stats_to_dict(
                ServiceStats(
                    registered=2, resident=1, loads=3, evictions=1, hits=9,
                    validations=12, repairs=2, rows_validated=4096,
                    pipelines={
                        "hotel": {
                            "resident": True, "pinned": False, "hits": 9,
                            "source": "models/hotel.npz", "loads": 3,
                            "validations": 12, "repairs": 2, "rows_validated": 4096,
                        }
                    },
                )
            ),
            lambda p: protocol.service_stats_to_dict(protocol.service_stats_from_dict(p)),
        ),
        "monitor_snapshot": (
            protocol.monitor_snapshot_to_dict(sample_monitor_snapshot()),
            lambda p: protocol.monitor_snapshot_to_dict(protocol.monitor_snapshot_from_dict(p)),
        ),
        "drift_alert": (
            protocol.drift_alert_to_dict(sample_drift_alert()),
            lambda p: protocol.drift_alert_to_dict(protocol.drift_alert_from_dict(p)),
        ),
        "result_table": (
            protocol.result_table_to_dict(
                ResultTable("Golden", ["metric", "value"], rows=[["f1", 0.875]], notes=["note"])
            ),
            lambda p: protocol.result_table_to_dict(protocol.result_table_from_dict(p)),
        ),
        "validate_request": (
            ValidateRequest(
                records=[{"a": 0.5, "b": "lo"}, {"a": None, "b": "hi"}],
                pipeline="hotel",
                include_errors=True,
                workers=4,
            ).to_dict(),
            lambda p: ValidateRequest.from_dict(p).to_dict(),
        ),
        "repair_request": (
            RepairRequest(
                records=[{"a": 0.5, "b": "lo"}],
                pipeline="hotel",
                iterations=2,
                include_errors=False,
            ).to_dict(),
            lambda p: RepairRequest.from_dict(p).to_dict(),
        ),
    }


CASES = build_cases()


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name, (payload, _) in CASES.items():
            (GOLDEN_DIR / f"{name}.json").write_text(canonical(payload))


@pytest.mark.parametrize("name", sorted(CASES))
def test_encoding_matches_golden(name):
    payload, _ = CASES[name]
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    assert canonical(payload) == golden_path.read_text(), BREAKAGE_HINT.format(name=name)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_decodes_and_reencodes_identically(name):
    payload, roundtrip = CASES[name]
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    if roundtrip is None:
        pytest.skip("encode-only kind")
    assert roundtrip(golden) == golden, BREAKAGE_HINT.format(name=name)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_envelope_is_version_gated(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert golden["schema_version"] == protocol.SCHEMA_VERSION
    assert "kind" in golden
    from repro.exceptions import ProtocolError

    tampered = dict(golden, schema_version=protocol.SCHEMA_VERSION + 1)
    with pytest.raises(ProtocolError):
        protocol.check_envelope(tampered, golden["kind"])


def test_generic_dispatch_covers_every_decodable_golden():
    """``repro.api.from_dict`` must route every golden kind it claims."""
    for name, (payload, roundtrip) in CASES.items():
        if roundtrip is None or name == "validation_report_sparse" or name == "validation_report_none":
            continue
        decoded = protocol.from_dict(json.loads((GOLDEN_DIR / f"{name}.json").read_text()))
        assert decoded is not None, name
