"""Tests for GNN layers: shapes, gradients, masking, and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gnn import (
    ENCODER_ARCHITECTURES,
    GATConv,
    GCNConv,
    GINConv,
    Graph2VecEncoder,
    GraphContext,
    build_encoder,
    wl_subtree_signatures,
)
from repro.graph import FeatureGraph
from repro.nn import Tensor


@pytest.fixture
def graph() -> FeatureGraph:
    return FeatureGraph(
        ["a", "b", "c", "d", "e"],
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("a", "e"), ("b", "d")],
    )


@pytest.fixture
def ctx(graph) -> GraphContext:
    return GraphContext.from_feature_graph(graph)


@pytest.fixture
def x(ctx) -> Tensor:
    rng = np.random.default_rng(0)
    return Tensor(rng.normal(size=(7, ctx.n_nodes, 3)), requires_grad=True)


class TestGCN:
    def test_output_shape(self, ctx, x):
        layer = GCNConv(3, 8, rng=0)
        assert layer(x, ctx).shape == (7, 5, 8)

    def test_gradients_reach_weights(self, ctx, x):
        layer = GCNConv(3, 4, rng=0)
        layer(x, ctx).sum().backward()
        assert layer.weight.grad is not None and np.abs(layer.weight.grad).sum() > 0
        assert x.grad is not None

    def test_propagation_uses_graph(self, ctx):
        # A node's output must depend on its neighbor's input.
        layer = GCNConv(1, 1, rng=0)
        base = np.zeros((1, ctx.n_nodes, 1))
        bumped = base.copy()
        bumped[0, 1, 0] = 1.0  # bump node b
        out_base = layer(Tensor(base), ctx).numpy()
        out_bumped = layer(Tensor(bumped), ctx).numpy()
        delta = np.abs(out_bumped - out_base)[0, :, 0]
        assert delta[0] > 0  # a is a neighbor of b
        assert delta[4] == pytest.approx(0.0, abs=1e-12)  # e is not

    def test_node_count_mismatch(self, ctx):
        layer = GCNConv(3, 4, rng=0)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 99, 3))), ctx)


class TestGAT:
    def test_output_shape_single_head(self, ctx, x):
        layer = GATConv(3, 8, rng=0)
        assert layer(x, ctx).shape == (7, 5, 8)

    def test_output_shape_multi_head(self, ctx, x):
        layer = GATConv(3, 8, heads=2, rng=0)
        assert layer(x, ctx).shape == (7, 5, 8)

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            GATConv(3, 7, heads=2)

    def test_attention_rows_normalized(self, ctx, x):
        layer = GATConv(3, 4, heads=2, rng=0)
        layer(x, ctx)
        attention = layer.last_attention  # (heads, B, N, N)
        np.testing.assert_allclose(attention.sum(axis=-1), 1.0, atol=1e-6)

    def test_attention_respects_mask(self, ctx, x):
        layer = GATConv(3, 4, rng=0)
        layer(x, ctx)
        attention = layer.last_attention[0]  # (B, N, N)
        blocked = ~ctx.attention_mask
        assert np.abs(attention[:, blocked]).max() < 1e-6

    def test_gradients_reach_attention_params(self, ctx, x):
        layer = GATConv(3, 4, rng=0)
        layer(x, ctx).sum().backward()
        assert np.abs(layer.attn_src.grad).sum() > 0
        assert np.abs(layer.attn_dst.grad).sum() > 0

    def test_isolated_node_attends_to_self(self):
        graph = FeatureGraph(["a", "b", "c"], [("a", "b")])
        ctx = GraphContext.from_feature_graph(graph)
        layer = GATConv(2, 4, rng=0)
        layer(Tensor(np.random.default_rng(0).normal(size=(1, 3, 2))), ctx)
        attention = layer.last_attention[0, 0]
        np.testing.assert_allclose(attention[2], [0.0, 0.0, 1.0], atol=1e-6)


class TestGIN:
    def test_output_shape(self, ctx, x):
        layer = GINConv(3, 8, rng=0)
        assert layer(x, ctx).shape == (7, 5, 8)

    def test_eps_is_learnable(self, ctx, x):
        layer = GINConv(3, 4, rng=0)
        layer(x, ctx).sum().backward()
        assert layer.eps.grad is not None

    def test_eps_frozen_when_disabled(self, ctx, x):
        layer = GINConv(3, 4, train_eps=False, rng=0)
        layer(x, ctx).sum().backward()
        assert layer.eps.grad is None

    def test_neighbor_permutation_invariance(self, ctx):
        # GIN aggregates neighbors by sum: permuting neighbor values of a
        # node must leave that node's output unchanged.
        layer = GINConv(1, 4, rng=0)
        base = np.zeros((1, ctx.n_nodes, 1))
        base[0, 1, 0], base[0, 4, 0] = 2.0, 3.0  # neighbors of a: b and e
        swapped = base.copy()
        swapped[0, 1, 0], swapped[0, 4, 0] = 3.0, 2.0
        out_a_base = layer(Tensor(base), ctx).numpy()[0, 0]
        out_a_swapped = layer(Tensor(swapped), ctx).numpy()[0, 0]
        np.testing.assert_allclose(out_a_base, out_a_swapped, atol=1e-12)


class TestGraph2Vec:
    def test_wl_signature_shape(self, graph):
        sig = wl_subtree_signatures(graph, iterations=2, buckets=16)
        assert sig.shape == (5, 16)
        assert (sig >= 0).all()

    def test_wl_distinguishes_structure(self):
        # A path's endpoint vs midpoint should get different signatures.
        path = FeatureGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        sig = wl_subtree_signatures(path)
        assert not np.allclose(sig[0], sig[1])

    def test_encoder_output_shape(self, graph, ctx):
        enc = Graph2VecEncoder(3, 16, graph, rng=0)
        out = enc(Tensor(np.zeros((4, 5, 3))), ctx)
        assert out.shape == (4, 5, 16)

    def test_encoder_has_no_trainable_parameters(self, graph):
        enc = Graph2VecEncoder(3, 16, graph, rng=0)
        trainable = [p for p in enc.parameters() if p.requires_grad]
        assert not trainable
        # The frozen projection is a parameter so serialization restores it.
        assert enc.num_parameters() > 0
        assert "projection" in enc.state_dict()

    def test_encoder_deterministic(self, graph, ctx):
        a = Graph2VecEncoder(3, 16, graph, rng=9)
        b = Graph2VecEncoder(3, 16, graph, rng=9)
        x = np.random.default_rng(0).normal(size=(2, 5, 3))
        np.testing.assert_array_equal(a(Tensor(x), ctx).numpy(), b(Tensor(x), ctx).numpy())


class TestEncoderFactory:
    @pytest.mark.parametrize("architecture", ENCODER_ARCHITECTURES)
    def test_all_architectures_forward(self, architecture, graph, ctx, x):
        encoder = build_encoder(architecture, 3, 16, graph, rng=0)
        out = encoder(x, ctx)
        assert out.shape == (7, 5, 16)

    def test_paper_architecture_layer_order(self, graph):
        encoder = build_encoder("gat_gin", 3, 16, graph, n_layers=4, rng=0)
        kinds = [type(layer).__name__ for layer in encoder._layers]
        assert kinds == ["GATConv", "GINConv", "GATConv", "GINConv"]

    def test_unknown_architecture(self, graph):
        with pytest.raises(ConfigurationError):
            build_encoder("transformer", 3, 16, graph)

    def test_invalid_layer_count(self, graph):
        with pytest.raises(ConfigurationError):
            build_encoder("gcn", 3, 16, graph, n_layers=0)

    def test_learned_encoders_trainable(self, graph, ctx, x):
        encoder = build_encoder("gat_gin", 3, 16, graph, rng=0)
        assert encoder.num_parameters() > 0
        encoder(x, ctx).sum().backward()
        grads = [p.grad for p in encoder.parameters() if p.requires_grad]
        assert all(g is not None for g in grads)

    def test_attention_maps_exposed(self, graph, ctx, x):
        encoder = build_encoder("gat_gin", 3, 16, graph, rng=0)
        encoder(x, ctx)
        maps = encoder.attention_maps()
        assert len(maps) == 2  # two GAT layers
        assert maps[0].shape[-1] == graph.n_nodes

    def test_deterministic_construction(self, graph, ctx):
        x = np.random.default_rng(1).normal(size=(2, 5, 3))
        a = build_encoder("gcn_gin", 3, 8, graph, rng=11)
        b = build_encoder("gcn_gin", 3, 8, graph, rng=11)
        np.testing.assert_array_equal(a(Tensor(x), ctx).numpy(), b(Tensor(x), ctx).numpy())
