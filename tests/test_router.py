"""Router tier tests: consistent hashing, health-checked membership,
scatter/merge parity, failover, fleet processes.

The acceptance bar mirrors the serving stack's standing invariant: a
2-replica router fleet must produce **bit-identical** results to a
single-node gateway — reports, fused rule reports, stream summaries
(``n_chunks`` and float fold order included) — across all 20 seeded
corruption scenarios on both the JSON and the binary frame tier. On top
of that, the distributed failure contract: a draining or dead worker is
evicted (and re-admitted on recovery) without moving any other
pipeline's home replica; a worker dying mid-stream re-scatters its
chunk range onto survivors or, with nobody left, surfaces a retryable
503 — never a wrong or partial report.

In-process ``AsyncGateway`` replicas back most tests (the router only
needs URLs, keeping the 20-scenario sweep fast); one test spawns a real
2-process :class:`GatewayFleet` end to end.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import SimpleNamespace

import numpy as np
import pytest

from repro.exceptions import GatewayError
from repro.runtime import ValidationService
from repro.serve import AsyncGateway, Client, GatewayFleet, RouterGateway
from repro.serve.router import _HashRing
from tests.test_differential import (
    CHUNK_SIZE,
    N_SCENARIOS,
    RULES_DOC,
    assert_reports_identical,
    make_clean,
    make_scenario,
)

from repro.core import DQuaG, DQuaGConfig


@pytest.fixture(scope="module")
def archive():
    """A fitted pipeline saved to disk — replicas, the single-node
    reference, and the router's merge context all load this one file."""
    fitted = DQuaG(DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)).fit(
        make_clean(500, seed=0), rng=0
    )
    handle, path = tempfile.mkstemp(prefix="repro-router-", suffix=".npz")
    os.close(handle)
    fitted.save(path)
    yield path
    os.unlink(path)


@pytest.fixture(scope="module")
def cluster(archive):
    """Single-node reference + a 2-replica router, all from one archive."""
    services, gateways = [], []
    for _ in range(3):  # [0] = single-node reference, [1:] = replicas
        service = ValidationService(capacity=2, shard_workers=0)
        service.register("demo", archive)
        services.append(service)
        gateways.append(AsyncGateway(service, port=0).start())
    router = RouterGateway(
        [(f"replica-{i}", "127.0.0.1", gw.port) for i, gw in enumerate(gateways[1:])],
        port=0,
        archives={"demo": archive},
        health_interval=0,  # tests drive check_workers() deterministically
    ).start()
    yield SimpleNamespace(
        router=router,
        single=Client(port=gateways[0].port),
        routed=Client(port=router.port),
        gateways=gateways,
        replica_ports=[gw.port for gw in gateways[1:]],
    )
    router.close()
    for gateway in gateways:
        gateway.close()
    for service in services:
        service.close()


class _StubWorker:
    """A scriptable fake replica: healthz answers whatever the test sets;
    POST bodies are read then the socket is torn down mid-response
    (the 'worker died under a scattered stream' failure)."""

    def __init__(self, status: str = "ok"):
        stub = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):  # noqa: A002
                pass

            def do_GET(self):
                payload = {"kind": "health", "status": stub.status, "pipelines": 1}
                body = json.dumps(payload).encode()
                self.send_response(200 if stub.status == "ok" else 503)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self):
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    self.rfile.read(length)
                stub.posts += 1
                # die mid-request: no response bytes at all
                self.connection.close()
                self.close_connection = True

        self.status = status
        self.posts = 0
        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def close(self):
        self._server.shutdown()
        self._server.server_close()


class TestHashRing:
    def test_route_is_deterministic_and_balanced(self):
        ring = _HashRing([f"replica-{i}" for i in range(4)])
        keys = [f"pipeline-{i}" for i in range(200)]
        homes = [ring.route(key) for key in keys]
        assert homes == [ring.route(key) for key in keys]
        counts = {name: homes.count(name) for name in set(homes)}
        assert len(counts) == 4  # every replica owns some keys
        assert min(counts.values()) > 0

    def test_dead_replica_does_not_move_other_keys(self):
        names = [f"replica-{i}" for i in range(4)]
        ring = _HashRing(names)
        keys = [f"pipeline-{i}" for i in range(200)]
        before = {key: ring.route(key) for key in keys}
        alive = set(names) - {"replica-2"}
        for key, home in before.items():
            after = ring.route(key, alive)
            if home != "replica-2":
                assert after == home  # eviction moved nobody else
            else:
                assert after in alive
        # re-admission restores the original placement exactly
        assert {key: ring.route(key, set(names)) for key in keys} == before

    def test_order_prefers_home_then_failovers(self):
        ring = _HashRing(["a", "b", "c"])
        order = ring.order("demo")
        assert sorted(order) == ["a", "b", "c"]
        assert ring.route("demo") == order[0]
        assert ring.order("demo", set(order[1:])) == order[1:]


class TestParity:
    """Router-fronted results must be bit-identical to single-node."""

    @pytest.mark.parametrize("index", range(N_SCENARIOS))
    def test_validate_and_stream_identical_across_tiers(self, index, cluster):
        table = make_scenario(index)
        reference = cluster.single.validate("demo", table, include_errors=True)

        routed = cluster.routed.validate("demo", table, include_errors=True)
        assert_reports_identical(reference, routed, "router-json")

        framed = Client(port=cluster.router.port, wire="frame").validate(
            "demo", table, include_errors=True
        )
        assert_reports_identical(reference, framed, "router-frame")

        chunks = [
            table.slice_rows(start, start + CHUNK_SIZE)
            for start in range(0, table.n_rows, CHUNK_SIZE)
        ]
        single_stream = cluster.single.validate_stream("demo", chunks)
        routed_stream = cluster.routed.validate_stream("demo", chunks)
        # dict equality pins everything: flags, error sums (float fold
        # order), verdicts, and the client's chunk partition (n_chunks).
        assert routed_stream.to_dict() == single_stream.to_dict()

        if index % 5 == 0:  # frame-tier streams: sample the scenarios
            frame_stream = Client(port=cluster.router.port, wire="frame").validate_stream(
                "demo", chunks
            )
            assert frame_stream.to_dict() == single_stream.to_dict()

    def test_scatter_used_not_proxied(self, cluster):
        before = cluster.router._counters["streams_scattered"]
        table = make_scenario(1)
        chunks = [
            table.slice_rows(start, start + CHUNK_SIZE)
            for start in range(0, table.n_rows, CHUNK_SIZE)
        ]
        cluster.routed.validate_stream("demo", chunks)
        assert cluster.router._counters["streams_scattered"] == before + 1

    def test_rules_fan_out_and_fold_identically(self, cluster):
        table = make_scenario(3)
        chunks = [
            table.slice_rows(start, start + CHUNK_SIZE)
            for start in range(0, table.n_rows, CHUNK_SIZE)
        ]
        cluster.single.set_rules("demo", RULES_DOC)
        try:
            # One PUT through the router lands on every replica (the
            # scatter path may run a range on any of them).
            cluster.routed.set_rules("demo", RULES_DOC)
            for port in cluster.replica_ports:
                attached = Client(port=port).get_rules("demo")
                assert attached is not None and attached.name == RULES_DOC["name"]

            reference = cluster.single.validate_stream("demo", chunks)
            routed = cluster.routed.validate_stream("demo", chunks)
            assert routed.to_dict() == reference.to_dict()
            assert routed.rule_report is not None

            cluster.routed.delete_rules("demo")
            for port in cluster.replica_ports:
                assert Client(port=port).get_rules("demo") is None
        finally:
            cluster.single.delete_rules("demo")
            cluster.routed.delete_rules("demo")

    def test_error_contract_proxied_verbatim(self, cluster):
        with pytest.raises(GatewayError) as excinfo:
            cluster.routed.validate("nope", make_scenario(0))
        assert excinfo.value.status == 404
        with pytest.raises(GatewayError) as excinfo:
            cluster.routed.validate_stream("demo", [])
        assert excinfo.value.status == 400


class TestMembership:
    def test_draining_replica_is_evicted_then_readmitted(self, cluster):
        """Satellite pin: a worker reporting 503 'draining' on healthz is
        evicted by the router, and re-admitted once healthy again."""
        gateway = cluster.gateways[1]  # replica-0
        health = cluster.router.check_workers()
        assert health == {"replica-0": True, "replica-1": True}
        evictions = cluster.router._counters["evictions"]
        try:
            gateway._draining = True  # the close() drain window, held open
            # the wire actually reports 503 + "draining"
            conn = HTTPConnection("127.0.0.1", gateway.port)
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 503
            assert payload["status"] == "draining"

            assert cluster.router.check_workers() == {
                "replica-0": False,
                "replica-1": True,
            }
            assert cluster.router._counters["evictions"] == evictions + 1
            assert "replica-0" not in cluster.router.alive_names()
            # traffic still flows through the survivor
            cluster.routed.validate("demo", make_clean(64, seed=5))
        finally:
            gateway._draining = False
        assert cluster.router.check_workers()["replica-0"] is True
        assert cluster.router._counters["readmissions"] >= 1

    def test_healthz_degrades_when_no_replica_is_routable(self, archive):
        stub = _StubWorker(status="draining")
        router = RouterGateway(
            [("only", "127.0.0.1", stub.port)], port=0, health_interval=0
        ).start()
        try:
            router.check_workers()
            payload = router.healthz()
            assert payload["status"] == "degraded"
            assert payload["healthy_replicas"] == 0
            conn = HTTPConnection("127.0.0.1", router.port)
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            assert response.status == 503
            response.read()
            conn.close()
        finally:
            router.close()
            stub.close()


class TestFailover:
    def test_worker_dying_midstream_rescatters_exactly(self, cluster, archive):
        """Satellite pin: kill a worker mid-stream — the request completes
        via re-scatter with a bit-identical report, never a partial one."""
        stub = _StubWorker(status="ok")  # healthy on probes, dies on POST
        targets = [
            (f"replica-{i}", "127.0.0.1", port)
            for i, port in enumerate(cluster.replica_ports)
        ] + [("doomed", "127.0.0.1", stub.port)]
        router = RouterGateway(
            targets, port=0, archives={"demo": archive}, health_interval=0
        ).start()
        client = Client(port=router.port)
        try:
            table = make_scenario(2)
            chunks = [
                table.slice_rows(start, start + CHUNK_SIZE)
                for start in range(0, table.n_rows, CHUNK_SIZE)
            ]
            assert len(chunks) >= 3  # every replica owns at least one range
            reference = cluster.single.validate_stream("demo", chunks)
            routed = client.validate_stream("demo", chunks)
            assert routed.to_dict() == reference.to_dict()
            assert stub.posts >= 1  # the doomed worker really was hit
            assert router._counters["rescatters"] >= 1
            assert "doomed" not in router.alive_names()
        finally:
            router.close()
            stub.close()

    def test_every_replica_dead_yields_retryable_503(self, archive):
        stubs = [_StubWorker(status="ok") for _ in range(2)]
        router = RouterGateway(
            [(f"stub-{i}", "127.0.0.1", stub.port) for i, stub in enumerate(stubs)],
            port=0,
            archives={"demo": archive},
            health_interval=0,
        ).start()
        client = Client(port=router.port)
        try:
            table = make_clean(600, seed=9)
            chunks = [
                table.slice_rows(start, start + CHUNK_SIZE)
                for start in range(0, table.n_rows, CHUNK_SIZE)
            ]
            with pytest.raises(GatewayError) as excinfo:
                client.validate_stream("demo", chunks)
            assert excinfo.value.status == 503  # retryable, never partial
            # dead replicas also fail plain validates with 503
            with pytest.raises(GatewayError) as excinfo:
                client.validate("demo", make_clean(32, seed=3))
            assert excinfo.value.status == 503
        finally:
            router.close()
            for stub in stubs:
                stub.close()


class TestObservability:
    def test_metrics_grouped_with_replica_label(self, cluster):
        cluster.routed.validate("demo", make_clean(64, seed=11))
        text = cluster.routed.metrics()
        # the router's own gauge family
        assert "repro_router_replicas 2" in text
        assert "repro_router_replicas_healthy" in text
        assert 'repro_router_replica_up{replica="replica-0"} 1' in text
        assert 'repro_router_requests_total{replica=' in text
        assert "repro_router_streams_scattered_total" in text
        # replica metrics: every sample labeled, each metric declared once
        assert 'replica="replica-0"' in text and 'replica="replica-1"' in text
        for line in text.splitlines():
            if line.startswith("repro_service_") or line.startswith("repro_pipeline_"):
                assert 'replica="' in line, line
        declared = [
            line.split()[2] for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert len(declared) == len(set(declared))  # one HELP/TYPE block per metric

    def test_pipelines_aggregates_fleet_counters(self, cluster):
        stats = cluster.routed.pipelines()
        assert stats.registered == 1  # max, not sum: same registry everywhere
        assert stats.validations >= 1
        assert "demo" in stats.pipelines
        per_replica_total = 0
        for port in cluster.replica_ports:
            per_replica_total += Client(port=port).pipelines().rows_validated
        assert stats.rows_validated == per_replica_total


class TestFleetProcesses:
    def test_spawned_fleet_serves_kills_and_readmits(self, archive):
        """End-to-end over real worker processes: spawn 2 replicas from
        the archive, serve through the router, hard-kill one worker
        (evicted; traffic flows on), restart it (re-admitted)."""
        fleet = GatewayFleet({"demo": archive}, replicas=2, monitor_window=0)
        with fleet:
            router = RouterGateway(
                fleet.targets(), port=0, archives={"demo": archive}, health_interval=0
            ).start()
            client = Client(port=router.port)
            try:
                assert router.check_workers() == {"replica-0": True, "replica-1": True}
                payload = client.healthz()
                assert payload["status"] == "ok"
                assert payload["role"] == "router"
                assert payload["healthy_replicas"] == 2

                table = make_clean(300, seed=21)
                report = client.validate("demo", table, include_errors=True)

                fleet.kill_worker(0)
                health = router.check_workers()
                assert health["replica-0"] is False and health["replica-1"] is True
                survivor = client.validate("demo", table, include_errors=True)
                assert_reports_identical(report, survivor, "post-kill")

                fleet.restart_worker(0)
                assert router.check_workers()["replica-0"] is True
                assert client.healthz()["healthy_replicas"] == 2
            finally:
                router.close()
