"""Unit tests for the compiled preprocessing plan and its satellites.

Covers :class:`repro.data.plan.TransformPlan` edge cases (all-missing
columns, unknown-only categoricals, degenerate constant numerics, empty
chunks), the zero-copy :meth:`Table.slice_rows` view, the vectorized
:meth:`LabelEncoder.inverse_transform`, :meth:`Workspace.acquire`
freshness semantics, and the engine's encoder-side constant folding.
The scenario-scale bit-identity sweep lives in ``test_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, LabelEncoder, Table, TableSchema
from repro.data.preprocess import TablePreprocessor
from repro.exceptions import SchemaError
from repro.nn.kernels import Workspace


def make_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("num", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("const", ColumnKind.NUMERIC, "degenerate constant"),
            ColumnSpec("cat", ColumnKind.CATEGORICAL, "band", categories=("lo", "hi")),
        ]
    )


def make_clean(n: int = 64, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    return Table(
        make_schema(),
        {"num": x, "const": np.full(n, 3.25), "cat": np.where(x > 0.5, "hi", "lo")},
    )


@pytest.fixture()
def preprocessor() -> TablePreprocessor:
    return TablePreprocessor(make_schema()).fit(make_clean())


def assert_plan_matches_legacy(preprocessor: TablePreprocessor, table: Table) -> np.ndarray:
    __tracebackhide__ = True
    legacy = preprocessor.transform(table)
    compiled = preprocessor.compile().transform(table)
    assert compiled.dtype == legacy.dtype
    np.testing.assert_array_equal(compiled, legacy)
    return legacy


# ---------------------------------------------------------------------------
# TransformPlan edge cases
# ---------------------------------------------------------------------------
class TestTransformPlanEdges:
    def test_all_missing_columns(self, preprocessor):
        table = Table(
            make_schema(),
            {"num": np.full(5, np.nan), "const": np.full(5, np.nan), "cat": [None] * 5},
        )
        matrix = assert_plan_matches_legacy(preprocessor, table)
        assert (matrix == preprocessor.missing_sentinel).all()

    def test_unknown_only_categorical(self, preprocessor):
        table = make_clean(8, seed=3)
        table = table.with_column("cat", ["never-seen"] * 8)
        matrix = assert_plan_matches_legacy(preprocessor, table)
        cat = matrix[:, list(table.schema.names).index("cat")]
        assert (cat == 1.0 + preprocessor.unknown_margin).all()

    def test_degenerate_constant_numeric(self, preprocessor):
        table = make_clean(6, seed=4)
        values = np.full(6, 99.0)
        values[2] = np.nan
        table = table.with_column("const", values)
        matrix = assert_plan_matches_legacy(preprocessor, table)
        const = matrix[:, 1]
        assert const[0] == 0.5  # constant column scales to 0.5 regardless of value
        assert const[2] == preprocessor.missing_sentinel

    def test_empty_chunk(self, preprocessor):
        empty = make_clean(10).slice_rows(4, 4)
        assert empty.n_rows == 0
        matrix = preprocessor.compile().transform(empty)
        assert matrix.shape == (0, 3)
        out = np.empty((8, 3))
        view = preprocessor.compile().transform_into(make_clean(10), out, 7, 7)
        assert view.shape == (0, 3)

    def test_non_finite_numeric_hits_sentinel(self, preprocessor):
        table = make_clean(4, seed=5)
        table = table.with_column("num", np.array([0.25, np.inf, -np.inf, np.nan]))
        matrix = assert_plan_matches_legacy(preprocessor, table)
        assert (matrix[1:, 0] == preprocessor.missing_sentinel).all()

    def test_unsorted_restored_vocabulary_assigns_legacy_codes(self):
        """from_metadata vocabularies are taken verbatim; the plan's
        sorted searchsorted must still yield the original codes."""
        schema = TableSchema([ColumnSpec("c", ColumnKind.CATEGORICAL, "x")])
        preprocessor = TablePreprocessor(schema).fit(Table(schema, {"c": ["b", "a", "d"]}))
        payload = preprocessor.to_metadata()
        payload["label_classes"]["c"] = ["d", "a", "b"]  # deliberately unsorted
        restored = TablePreprocessor.from_metadata(payload)
        table = Table(schema, {"c": ["a", "d", "b", None, "zz"]})
        assert_plan_matches_legacy(restored, table)

    def test_trailing_nul_values_stay_unknown(self, preprocessor):
        """NumPy fixed-width comparisons treat trailing NULs as padding;
        the exact object-level verification must not — 'lo\\x00' is
        unknown to the legacy dict lookup and must stay unknown."""
        table = make_clean(6, seed=11)
        table = table.with_column(
            "cat", ["lo", "lo\x00", "hi\x00\x00", "l\x00o", "hi", None]
        )
        matrix = assert_plan_matches_legacy(preprocessor, table)
        cat = matrix[:, 2]
        unknown = 1.0 + preprocessor.unknown_margin
        assert cat[1] == unknown and cat[2] == unknown and cat[3] == unknown
        assert cat[5] == preprocessor.missing_sentinel

    def test_vocabulary_with_trailing_nul_class(self):
        """Classes differing only in trailing NULs defeat every
        fixed-width tier; the plan must fall back to the exact lookup."""
        schema = TableSchema([ColumnSpec("c", ColumnKind.CATEGORICAL, "x")])
        preprocessor = TablePreprocessor(schema).fit(
            Table(schema, {"c": ["lo", "lo\x00", "hi"]})
        )
        assert preprocessor.compile()._categorical[0].exact_of is not None
        table = Table(schema, {"c": ["lo", "lo\x00", "hi", "lo\x00\x00", None]})
        assert_plan_matches_legacy(preprocessor, table)

    def test_literal_none_string_vs_missing(self, preprocessor):
        """A genuine 'None' string is unknown (or its own category);
        only the ``None`` object is missing."""
        schema = TableSchema([ColumnSpec("c", ColumnKind.CATEGORICAL, "x")])
        fitted = TablePreprocessor(schema).fit(Table(schema, {"c": ["None", "a"]}))
        table = Table(schema, {"c": ["None", None, "a", "None\x00"]})
        matrix = assert_plan_matches_legacy(fitted, table)
        assert matrix[0, 0] != matrix[1, 0]  # category vs missing sentinel

    def test_non_ascii_values_and_vocabulary(self, preprocessor):
        schema = TableSchema([ColumnSpec("c", ColumnKind.CATEGORICAL, "x")])
        fitted = TablePreprocessor(schema).fit(Table(schema, {"c": ["café", "naïve", "plain"]}))
        table = Table(schema, {"c": ["café", "plain", "übel", None, "naïve"]})
        assert_plan_matches_legacy(fitted, table)
        # ASCII vocabulary, non-ASCII data: byte tier must fall through.
        ascii_fitted = TablePreprocessor(schema).fit(Table(schema, {"c": ["a", "b"]}))
        table = Table(schema, {"c": ["a", "ü", None, "b"]})
        assert_plan_matches_legacy(ascii_fitted, table)

    def test_transform_into_validates_buffer(self, preprocessor):
        table = make_clean(10)
        plan = preprocessor.compile()
        with pytest.raises(ValueError):
            plan.transform_into(table, np.empty((10, 2)))  # wrong width
        with pytest.raises(ValueError):
            plan.transform_into(table, np.empty((4, 3)))  # too few rows
        with pytest.raises(ValueError):
            plan.transform_into(table, np.empty((10, 3), dtype=np.float32))
        with pytest.raises(TypeError):
            plan.transform_into(table, [[0.0] * 3 for _ in range(10)])  # not a buffer
        with pytest.raises(SchemaError):
            plan.transform(Table(TableSchema([ColumnSpec("q", ColumnKind.NUMERIC, "x")]), {"q": [1.0]}))

    def test_chunk_buffer_reuse_semantics(self, preprocessor):
        table = make_clean(40, seed=6)
        plan = preprocessor.compile()
        reused = list(plan.transform_chunks(table, 16))
        # The first two 16-row chunks share one backing buffer...
        assert np.shares_memory(reused[0], reused[1])
        # ...while reuse_buffer=False yields independently-owned chunks
        # that concatenate to the exact full transform.
        fresh = list(plan.transform_chunks(table, 16, reuse_buffer=False))
        assert not np.shares_memory(fresh[0], fresh[1])
        np.testing.assert_array_equal(
            np.concatenate(fresh), preprocessor.transform(table)
        )

    def test_refit_invalidates_cached_plan(self, preprocessor):
        plan = preprocessor.compile()
        assert preprocessor.compile() is plan  # cached
        preprocessor.fit(make_clean(32, seed=9))
        assert preprocessor.compile() is not plan


# ---------------------------------------------------------------------------
# Table.slice_rows
# ---------------------------------------------------------------------------
class TestSliceRows:
    def test_zero_copy_view(self):
        table = make_clean(20)
        view = table.slice_rows(5, 15)
        assert view.n_rows == 10
        assert view.schema is table.schema
        for name in table.schema.names:
            assert np.shares_memory(view.column(name), table.column(name))

    def test_slice_semantics(self):
        table = make_clean(10)
        assert table.slice_rows(8, 99).n_rows == 2  # clamps
        assert table.slice_rows(4, 2).n_rows == 0  # empty
        assert table.slice_rows(-3).n_rows == 3  # negative from end
        np.testing.assert_array_equal(
            table.slice_rows(2, 6).column("num"), table.column("num")[2:6]
        )

    def test_head_is_view(self):
        table = make_clean(10)
        head = table.head(4)
        assert head.n_rows == 4
        assert np.shares_memory(head.column("num"), table.column("num"))
        assert table.head(99).n_rows == 10


# ---------------------------------------------------------------------------
# vectorized LabelEncoder.inverse_transform
# ---------------------------------------------------------------------------
class TestInverseTransform:
    def test_round_clip_and_none(self):
        encoder = LabelEncoder().fit(["a", "b", "c"])
        codes = np.array([0.2, 0.5, 1.5, 2.5, 7.0, -3.0, np.nan])
        decoded = encoder.inverse_transform(codes)
        # 0.5 → 0, 1.5 → 2, 2.5 → 2: half-to-even, matching builtin round().
        assert list(decoded) == ["a", "a", "c", "c", "c", "a", None]
        assert all(v is None or type(v) is str for v in decoded)

    def test_all_nan_and_empty(self):
        encoder = LabelEncoder().fit(["a"])
        assert list(encoder.inverse_transform(np.array([np.nan, np.nan]))) == [None, None]
        assert len(encoder.inverse_transform(np.array([]))) == 0

    def test_roundtrip_through_preprocessor(self, preprocessor):
        table = make_clean(16, seed=7)
        matrix = preprocessor.compile().transform(table)
        recovered = preprocessor.inverse_transform(matrix)
        assert list(recovered.column("cat")) == list(table.column("cat"))


# ---------------------------------------------------------------------------
# Workspace.acquire + node-input slab caching
# ---------------------------------------------------------------------------
class TestWorkspaceAcquire:
    def test_fresh_flag(self):
        ws = Workspace()
        first, fresh = ws.acquire("k", (4, 3))
        assert fresh
        first.fill(7.0)
        again, fresh = ws.acquire("k", (4, 3))
        assert not fresh and (again == 7.0).all()
        smaller, fresh = ws.acquire("k", (2, 3))
        assert not fresh and (smaller == 7.0).all()
        _, fresh = ws.acquire("k", (8, 3))
        assert fresh  # grew → reallocated

    def test_get_still_returns_array(self):
        ws = Workspace()
        assert ws.get("k", (2, 2)).shape == (2, 2)


# ---------------------------------------------------------------------------
# encoder-side constant folding
# ---------------------------------------------------------------------------
class TestEncoderFolding:
    @pytest.mark.parametrize("architecture,expect_folded", [
        ("gat_gin", True),
        ("gcn", True),
        ("graphsage", False),  # SAGE has no folded export: slab path
    ])
    def test_folding_and_autograd_parity(self, architecture, expect_folded):
        config = DQuaGConfig(architecture=architecture, hidden_dim=16, epochs=3, batch_size=32)
        pipeline = DQuaG(config).fit(make_clean(128, seed=1), rng=0)
        engine = pipeline.engine
        assert engine is not None
        assert engine._encoder_folded is expect_folded
        matrix = pipeline.preprocessor.compile().transform(make_clean(300, seed=2))
        np.testing.assert_allclose(
            engine.reconstruction_errors(matrix),
            pipeline.model.reconstruction_errors(matrix),
            atol=1e-10,
        )

    def test_slab_reuse_across_mixed_batch_sizes(self):
        """The non-folded slab path caches the constant embedding region
        per workspace buffer; shrinking and re-growing batches must not
        corrupt results."""
        config = DQuaGConfig(architecture="graphsage", hidden_dim=16, epochs=3, batch_size=32)
        pipeline = DQuaG(config).fit(make_clean(128, seed=1), rng=0)
        engine = pipeline.engine
        matrix = pipeline.preprocessor.compile().transform(make_clean(500, seed=8))
        reference = engine.reconstruction_errors(matrix).copy()
        engine.reconstruction_errors(matrix[:100])  # shrink (buffer kept)
        engine.reconstruction_errors(matrix[:700 // 2])  # regrow within capacity
        np.testing.assert_array_equal(engine.reconstruction_errors(matrix), reference)
