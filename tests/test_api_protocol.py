"""Exact JSON round-trips for every object of the repro.api protocol.

Every payload goes through the full wire path — ``to_dict`` →
``json.dumps`` → ``json.loads`` → ``from_dict`` — and must come back
bit-for-bit, NumPy dtypes included.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    SCHEMA_VERSION,
    RepairRequest,
    ValidateRequest,
    from_dict,
    render_summary,
    to_dict,
)
from repro.baselines.base import BatchVerdict
from repro.core.repair import RepairSummary
from repro.core.thresholds import ThresholdCalibration
from repro.core.validator import ValidationReport
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.exceptions import ProtocolError, SchemaError
from repro.experiments.reporting import ResultTable
from repro.runtime.service import ServiceStats
from repro.runtime.streaming import PartialReport, StreamSummary


def wire(payload: dict) -> dict:
    """The full JSON wire path."""
    return json.loads(json.dumps(payload))


def assert_array_identical(actual: np.ndarray, expected: np.ndarray) -> None:
    assert actual.dtype == expected.dtype
    assert actual.shape == expected.shape
    np.testing.assert_array_equal(actual, expected)


@pytest.fixture
def report() -> ValidationReport:
    rng = np.random.default_rng(42)
    n_rows, n_features = 50, 6
    cell_errors = rng.random((n_rows, n_features))
    sample_errors = cell_errors.mean(axis=1)
    row_flags = sample_errors > 0.55
    cell_flags = (cell_errors > 0.9) & row_flags[:, None]
    return ValidationReport(
        sample_errors=sample_errors,
        cell_errors=cell_errors,
        row_flags=row_flags,
        cell_flags=cell_flags,
        threshold=0.55,
        flagged_fraction=float(row_flags.mean()),
        is_problematic=True,
        feature_names=[f"f{i}" for i in range(n_features)],
    )


class TestValidationReportRoundTrip:
    def test_dense_is_bit_for_bit(self, report):
        clone = ValidationReport.from_dict(wire(report.to_dict()))
        assert_array_identical(clone.sample_errors, report.sample_errors)
        assert_array_identical(clone.cell_errors, report.cell_errors)
        assert_array_identical(clone.row_flags, report.row_flags)
        assert_array_identical(clone.cell_flags, report.cell_flags)
        assert clone.threshold == report.threshold
        assert clone.flagged_fraction == report.flagged_fraction
        assert clone.is_problematic == report.is_problematic
        assert clone.feature_names == report.feature_names

    def test_dense_survives_awkward_floats(self, report):
        # Shortest-repr decimals must survive: subnormals, huge values,
        # and values with no short decimal form.
        report.sample_errors[:4] = [5e-324, 1.7976931348623157e308, 0.1 + 0.2, np.pi]
        clone = ValidationReport.from_dict(wire(report.to_dict()))
        assert_array_identical(clone.sample_errors, report.sample_errors)

    def test_sparse_keeps_flags_and_flagged_errors_exact(self, report):
        payload = wire(report.to_dict(errors="sparse"))
        clone = ValidationReport.from_dict(payload)
        assert_array_identical(clone.row_flags, report.row_flags)
        assert_array_identical(clone.cell_flags, report.cell_flags)
        assert clone.threshold == report.threshold
        assert clone.is_problematic == report.is_problematic
        flagged = report.row_flags
        np.testing.assert_array_equal(clone.sample_errors[flagged], report.sample_errors[flagged])
        np.testing.assert_array_equal(
            clone.cell_errors[report.cell_flags], report.cell_errors[report.cell_flags]
        )
        assert (clone.cell_errors[~report.cell_flags] == 0.0).all()

    def test_sparse_payload_is_small(self, report):
        # Sparse size tracks the damage, not the table: the dense form of
        # the same report must be much larger.
        sparse = len(json.dumps(report.to_dict(errors="sparse")))
        dense = len(json.dumps(report.to_dict()))
        assert sparse < dense / 3

    def test_errors_none_mode(self, report):
        clone = ValidationReport.from_dict(wire(report.to_dict(errors="none")))
        assert_array_identical(clone.row_flags, report.row_flags)
        assert (clone.cell_errors == 0.0).all()

    def test_unknown_errors_mode_rejected(self, report):
        with pytest.raises(ProtocolError):
            report.to_dict(errors="bogus")

    def test_tampered_errors_mode_rejected_on_decode(self, report):
        payload = report.to_dict()
        payload["errors"] = "bogus"
        with pytest.raises(ProtocolError, match="errors mode"):
            ValidationReport.from_dict(payload)
        del payload["errors"]
        with pytest.raises(ProtocolError, match="errors mode"):
            ValidationReport.from_dict(payload)


class TestEnvelopeGating:
    def test_schema_version_mismatch_rejected(self, report):
        payload = report.to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ProtocolError, match="schema_version"):
            ValidationReport.from_dict(payload)

    def test_missing_schema_version_rejected(self, report):
        payload = report.to_dict()
        del payload["schema_version"]
        with pytest.raises(ProtocolError):
            ValidationReport.from_dict(payload)

    def test_kind_mismatch_rejected(self, report):
        payload = report.to_dict()
        payload["kind"] = "repair_summary"
        with pytest.raises(ProtocolError, match="kind"):
            ValidationReport.from_dict(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            from_dict([1, 2, 3])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown payload kind"):
            from_dict({"schema_version": SCHEMA_VERSION, "kind": "mystery"})


class TestOtherObjectsRoundTrip:
    def test_batch_verdict(self):
        verdict = BatchVerdict(
            is_problematic=True,
            flagged_rows=np.array([3, 7, 9], dtype=np.int64),
            score=0.125,
            details={"threshold": 0.5, "columns": ["a", "b"]},
        )
        clone = BatchVerdict.from_dict(wire(verdict.to_dict()))
        assert_array_identical(clone.flagged_rows, verdict.flagged_rows)
        assert clone.is_problematic and clone.score == verdict.score
        assert clone.details == verdict.details

    def test_verdict_summary_renderer(self):
        summary = {
            "schema_version": SCHEMA_VERSION,
            "kind": "verdict_summary",
            "n_rows": 200,
            "n_flagged": 14,
            "flagged_fraction": 0.07,
            "threshold": 0.123456,
            "is_problematic": True,
        }
        verdict = BatchVerdict(is_problematic=True, details={"summary": summary})
        assert verdict.summary() == render_summary(summary)
        assert "14/200 rows flagged" in verdict.summary()
        # Baselines without the structured payload still render something.
        plain = BatchVerdict(is_problematic=False, score=0.25)
        assert "OK" in plain.summary()

    def test_repair_summary(self):
        summary = RepairSummary(n_rows_touched=4, n_cells_repaired=9, repairs_by_column={"a": 5, "b": 4})
        clone = RepairSummary.from_dict(wire(summary.to_dict()))
        assert clone == summary

    def test_threshold_calibration(self):
        calibration = ThresholdCalibration(
            threshold=0.1 + 0.2, percentile=95.0, clean_mean=0.1,
            clean_p50=0.09, clean_max=0.4, n_samples=1234,
        )
        clone = ThresholdCalibration.from_dict(wire(calibration.to_dict()))
        assert clone == calibration

    def test_partial_report_dense_and_bounded(self):
        rng = np.random.default_rng(1)
        n, f = 30, 4
        cell_errors = rng.random((n, f))
        cell_flags = cell_errors > 0.8
        rows, cols = np.nonzero(cell_flags)
        for keep in (True, False):
            partial = PartialReport(
                offset=60,
                n_rows=n,
                sample_errors=cell_errors.mean(axis=1),
                row_flags=cell_flags.any(axis=1),
                cell_rows=rows,
                cell_cols=cols,
                cell_errors=cell_errors if keep else None,
                cell_flags=cell_flags if keep else None,
            )
            clone = PartialReport.from_dict(wire(partial.to_dict()))
            assert clone.offset == partial.offset and clone.n_rows == partial.n_rows
            assert_array_identical(clone.sample_errors, partial.sample_errors)
            assert_array_identical(clone.row_flags, partial.row_flags)
            assert_array_identical(clone.cell_rows, partial.cell_rows)
            assert_array_identical(clone.cell_cols, partial.cell_cols)
            if keep:
                assert_array_identical(clone.cell_errors, partial.cell_errors)
                assert_array_identical(clone.cell_flags, partial.cell_flags)
            else:
                assert clone.cell_errors is None and clone.cell_flags is None
            np.testing.assert_array_equal(clone.flagged_rows, partial.flagged_rows)

    def test_stream_summary(self):
        summary = StreamSummary(
            n_rows=1000, n_chunks=8, n_flagged=17,
            flagged_rows=np.arange(17, dtype=np.int64) * 3,
            threshold=0.5, flagged_fraction=0.017, is_problematic=False,
            flagged_cells_by_column={"x": 9, "y": 8},
            mean_sample_error=0.21, max_sample_error=3.5,
        )
        clone = StreamSummary.from_dict(wire(summary.to_dict()))
        assert_array_identical(clone.flagged_rows, summary.flagged_rows)
        assert clone.flagged_cells_by_column == summary.flagged_cells_by_column
        assert clone.summary() == summary.summary()

    def test_service_stats(self):
        stats = ServiceStats(
            registered=3, resident=2, loads=5, evictions=1, hits=40,
            validations=30, repairs=2, rows_validated=9000,
            pipelines={
                "hotel": {
                    "resident": True, "pinned": False, "hits": 40,
                    "source": "models/hotel.npz", "loads": 5,
                    "validations": 30, "repairs": 2, "rows_validated": 9000,
                }
            },
        )
        clone = ServiceStats.from_dict(wire(stats.to_dict()))
        assert clone == stats

    def test_result_table(self):
        table = ResultTable("Table 1", ["method", "f1"], notes=["smoke scale"])
        table.add_row("dquag", np.float64(0.91))
        table.add_row("deequ", 0.77)
        clone = ResultTable.from_dict(wire(table.to_dict()))
        assert clone.title == table.title and clone.headers == table.headers
        assert clone.rows == [["dquag", 0.91], ["deequ", 0.77]]
        assert clone.render().splitlines()[0] == "Table 1"

    def test_result_table_nan_cells_become_rfc_json_null(self):
        # Missing cells are float('nan') in result tables; the payload
        # must still be strict RFC 8259 JSON (no NaN tokens).
        table = ResultTable("T", ["a"], rows=[[float("nan")], [np.float64("inf")]])
        payload = table.to_dict()
        json.dumps(payload, allow_nan=False)  # raises on NaN/Infinity
        assert ResultTable.from_dict(wire(payload)).rows == [[None], [None]]


class TestGenericDispatch:
    def test_round_trip_through_generic_entry_points(self, report):
        objects = [
            report,
            RepairSummary(1, 2, {"a": 2}),
            ThresholdCalibration(0.5, 95.0, 0.1, 0.09, 0.9, 100),
            StreamSummary(10, 1, 0, np.empty(0, dtype=np.int64), 0.5, 0.0, False),
        ]
        for obj in objects:
            clone = from_dict(wire(to_dict(obj)))
            assert type(clone) is type(obj)

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            to_dict(object())

    def test_requests_route_through_generic_from_dict(self):
        request = ValidateRequest(records=[{"x": 1.0}], pipeline="p")
        clone = from_dict(wire(request.to_dict()))
        assert isinstance(clone, ValidateRequest) and clone.pipeline == "p"


class TestRequests:
    def test_validate_request_round_trip(self):
        request = ValidateRequest(
            records=[{"x": 1.5, "c": "a"}, {"x": None, "c": None}],
            pipeline="hotel",
            include_errors=True,
        )
        clone = ValidateRequest.from_dict(wire(request.to_dict()))
        assert clone == request

    def test_repair_request_round_trip_and_validation(self):
        request = RepairRequest(records=[{"x": 1.0}], pipeline="p", iterations=3)
        clone = RepairRequest.from_dict(wire(request.to_dict()))
        assert clone == request
        with pytest.raises(ProtocolError):
            RepairRequest(records=[], iterations=0)

    def test_bare_payload_accepted_enveloped_gated(self):
        bare = ValidateRequest.from_payload({"records": [{"x": 1.0}]}, pipeline="p")
        assert bare.pipeline == "p" and not bare.include_errors
        with pytest.raises(ProtocolError):
            ValidateRequest.from_payload({"schema_version": 99, "records": []})
        with pytest.raises(ProtocolError):
            ValidateRequest.from_payload({"records": "not-a-list"})


class TestTableRecords:
    @pytest.fixture
    def schema(self) -> TableSchema:
        return TableSchema(
            [
                ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
                ColumnSpec("c", ColumnKind.CATEGORICAL, "band", categories=("a", "b")),
            ]
        )

    def test_round_trip_preserves_values_and_missingness(self, schema):
        table = Table(schema, {"x": [1.5, float("nan"), -2.25], "c": ["a", None, "b"]})
        records = wire({"records": table.to_records()})["records"]
        assert records[1] == {"x": None, "c": None}
        clone = Table.from_records(schema, records)
        np.testing.assert_array_equal(clone["x"][[0, 2]], table["x"][[0, 2]])
        assert np.isnan(clone["x"][1])
        assert list(clone["c"]) == ["a", None, "b"]

    def test_absent_fields_become_missing(self, schema):
        table = Table.from_records(schema, [{"x": 1.0}, {"c": "b"}])
        assert np.isnan(table["x"][1]) and table["c"][0] is None

    def test_unknown_fields_rejected(self, schema):
        with pytest.raises(SchemaError, match="typo"):
            Table.from_records(schema, [{"x": 1.0, "typo": 2.0}])

    def test_empty_records_make_empty_table(self, schema):
        table = Table.from_records(schema, [])
        assert table.n_rows == 0 and table.to_records() == []
