"""Binary columnar frame codec: goldens, round-trips, hostile inputs.

Three layers of defense for the wire tier added beside JSON:

* golden byte fixtures (``tests/golden/frame_*.bin``) freeze the exact
  encoder output — any byte-level drift fails loudly (regenerate with
  ``REPRO_REGEN_GOLDEN=1`` and review the diff);
* round-trip fuzz covers the value-space corners: NaN vs None, empty
  tables, non-ASCII and NUL-bearing strings, zero-length categories;
* hostile-input tests drive truncated/corrupted/oversized frames through
  the decoder and the live HTTP gateway — every one must fail with a
  clean :class:`FrameError` (HTTP 400) or :class:`FrameSizeError`
  (HTTP 413), never a crash or an allocation proportional to a declared
  (attacker-controlled) length.
"""

from __future__ import annotations

import http.client
import json
import os
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.api import framing
from repro.api.framing import (
    FRAME_CONTENT_TYPE,
    FrameFileWriter,
    decode_frame,
    encode_frame,
    frame_length,
    iter_frames,
    open_frame_file,
    report_from_frame,
    report_to_frame,
)
from repro.data.schema import ColumnKind, ColumnSpec, TableSchema
from repro.data.table import Table
from repro.exceptions import FrameError, FrameSizeError, SchemaError

GOLDEN_DIR = Path(__file__).parent / "golden"

BREAKAGE_HINT = (
    "\n\nThe frame byte layout for {name!r} changed. The binary codec is "
    "frozen under FRAME_VERSION {version}; if the change is deliberate, bump "
    "FRAME_VERSION, regenerate (REPRO_REGEN_GOLDEN=1), and review the diff."
)


def sample_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("age", ColumnKind.NUMERIC),
            ColumnSpec("score", ColumnKind.NUMERIC),
            ColumnSpec("city", ColumnKind.CATEGORICAL, categories=("paris", "lyon")),
        ]
    )


def sample_table() -> Table:
    return Table(
        sample_schema(),
        {
            "age": np.array([1.0, np.nan, 3.5, -0.0, 1e300], dtype=np.float64),
            "score": np.array([0.25, 0.5, np.nan, 2.0, -7.0], dtype=np.float64),
            "city": np.array(["paris", None, "lyon", "", "paris"], dtype=object),
        },
    )


def sample_report():
    from repro.core.validator import ValidationReport

    return ValidationReport(
        sample_errors=np.array([0.5, 3.0, 0.25, 0.125], dtype=np.float64),
        cell_errors=np.array(
            [[0.25, 0.25], [5.0, 1.0], [0.125, 0.125], [0.0625, 0.0625]],
            dtype=np.float64,
        ),
        row_flags=np.array([False, True, False, False]),
        cell_flags=np.array(
            [[False, False], [True, False], [False, False], [False, False]]
        ),
        threshold=1.5,
        flagged_fraction=0.25,
        is_problematic=True,
        feature_names=["a", "b"],
    )


def build_golden_cases() -> dict[str, bytes]:
    return {
        "frame_table": encode_frame(table=sample_table()),
        "frame_table_extra": encode_frame(
            table=sample_table(),
            extra={"kind": "validate_request", "include_errors": True},
        ),
        "frame_report_dense": report_to_frame(sample_report(), errors="dense"),
        "frame_report_sparse": report_to_frame(sample_report(), errors="sparse"),
        "frame_empty": encode_frame(extra={"ping": 1}),
    }


GOLDEN_CASES = build_golden_cases()


@pytest.fixture(scope="module", autouse=True)
def regenerate_if_requested():
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name, payload in GOLDEN_CASES.items():
            (GOLDEN_DIR / f"{name}.bin").write_bytes(payload)


class TestGoldenBytes:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_encoding_matches_golden(self, name):
        golden_path = GOLDEN_DIR / f"{name}.bin"
        assert golden_path.exists(), (
            f"missing golden fixture {golden_path}; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert GOLDEN_CASES[name] == golden_path.read_bytes(), BREAKAGE_HINT.format(
            name=name, version=framing.FRAME_VERSION
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_golden_bytes_decode(self, name):
        frame = decode_frame((GOLDEN_DIR / f"{name}.bin").read_bytes())
        if name.startswith("frame_report"):
            report = report_from_frame(frame)
            assert report.threshold == 1.5
            np.testing.assert_array_equal(
                report.row_flags, sample_report().row_flags
            )

    def test_encoding_is_deterministic(self):
        assert encode_frame(table=sample_table()) == encode_frame(table=sample_table())

    def test_frame_length_is_8_aligned(self):
        for name, payload in GOLDEN_CASES.items():
            assert frame_length(payload) == len(payload), name
            assert len(payload) % 8 == 0, name


class TestRoundTrip:
    def assert_tables_equal(self, decoded: Table, original: Table):
        assert decoded.schema == original.schema
        assert decoded.n_rows == original.n_rows
        for spec in original.schema:
            a, b = decoded.column(spec.name), original.column(spec.name)
            if spec.is_numeric:
                # NaN-aware AND bit-exact (signed zero, payload bits).
                np.testing.assert_array_equal(
                    np.asarray(a).view(np.uint64), np.asarray(b).view(np.uint64)
                )
            else:
                assert list(a) == list(b)

    def test_basic_round_trip(self):
        table = sample_table()
        frame = decode_frame(encode_frame(table=table), schema=table.schema)
        self.assert_tables_equal(frame.table, table)

    def test_missing_structure_matches_json_tier(self):
        table = sample_table()
        via_frame = decode_frame(encode_frame(table=table), schema=table.schema).table
        via_json = Table.from_records(
            table.schema, json.loads(json.dumps(table.to_records()))
        )
        np.testing.assert_array_equal(via_frame.missing_mask(), via_json.missing_mask())
        np.testing.assert_array_equal(via_frame.missing_mask(), table.missing_mask())

    def test_empty_table(self):
        table = Table(sample_schema(), {"age": [], "score": [], "city": []})
        frame = decode_frame(encode_frame(table=table), schema=table.schema)
        assert frame.table.n_rows == 0

    def test_no_table(self):
        frame = decode_frame(encode_frame(extra={"hello": [1, 2]}))
        assert frame.table is None and frame.extra == {"hello": [1, 2]}

    def test_non_ascii_and_nul_strings(self):
        schema = TableSchema([ColumnSpec("s", ColumnKind.CATEGORICAL)])
        values = ["héllo", "näïve", "日本語", "emoji 🎉", "nul\x00inside", "", None, "Ω"]
        table = Table(schema, {"s": np.array(values, dtype=object)})
        frame = decode_frame(encode_frame(table=table), schema=schema)
        assert list(frame.table.column("s")) == values

    def test_fuzz_round_trip(self):
        rng = np.random.default_rng(7)
        alphabet = ["a", "βγ", "日本", "x" * 50, "", "\x00", "🎉"]
        for trial in range(25):
            n = int(rng.integers(0, 40))
            numeric = rng.normal(size=n)
            numeric[rng.random(n) < 0.3] = np.nan
            strings = np.array(
                [
                    None if rng.random() < 0.25 else "".join(
                        rng.choice(alphabet, size=rng.integers(0, 4))
                    )
                    for _ in range(n)
                ],
                dtype=object,
            )
            schema = TableSchema(
                [ColumnSpec("n", ColumnKind.NUMERIC), ColumnSpec("s", ColumnKind.CATEGORICAL)]
            )
            table = Table(schema, {"n": numeric, "s": strings})
            frame = decode_frame(encode_frame(table=table), schema=schema)
            self.assert_tables_equal(frame.table, table)

    def test_arrays_round_trip(self):
        arrays = {
            "f": np.arange(12, dtype=np.float64).reshape(3, 4),
            "flags": np.array([True, False, True]),
            "i": np.array([-5, 0, 5], dtype=np.int64),
        }
        frame = decode_frame(encode_frame(arrays=arrays))
        for name, expected in arrays.items():
            np.testing.assert_array_equal(frame.arrays[name], expected)
            assert frame.arrays[name].dtype == expected.dtype

    @pytest.mark.parametrize("errors", ["dense", "sparse", "none"])
    def test_report_round_trip(self, errors):
        report = sample_report()
        decoded = report_from_frame(decode_frame(report_to_frame(report, errors=errors)))
        np.testing.assert_array_equal(decoded.row_flags, report.row_flags)
        np.testing.assert_array_equal(decoded.cell_flags, report.cell_flags)
        assert decoded.threshold == report.threshold
        assert decoded.is_problematic == report.is_problematic
        assert decoded.feature_names == report.feature_names
        if errors == "dense":
            np.testing.assert_array_equal(decoded.cell_errors, report.cell_errors)
            np.testing.assert_array_equal(decoded.sample_errors, report.sample_errors)
        elif errors == "sparse":
            np.testing.assert_array_equal(
                decoded.sample_errors[report.row_flags],
                report.sample_errors[report.row_flags],
            )

    def test_schema_pinning_rejects_mismatches(self):
        table = sample_table()
        payload = encode_frame(table=table)
        other = TableSchema(
            [ColumnSpec("age", ColumnKind.NUMERIC), ColumnSpec("score", ColumnKind.NUMERIC)]
        )
        with pytest.raises(FrameError, match="schema"):
            decode_frame(payload, schema=other)
        swapped = TableSchema(
            [
                ColumnSpec("age", ColumnKind.CATEGORICAL),
                ColumnSpec("score", ColumnKind.NUMERIC),
                ColumnSpec("city", ColumnKind.NUMERIC),
            ]
        )
        with pytest.raises(FrameError, match="schema"):
            decode_frame(payload, schema=swapped)


def corrupt(payload: bytes, offset: int, fmt: str, value: int) -> bytes:
    mutated = bytearray(payload)
    struct.pack_into(fmt, mutated, offset, value)
    return bytes(mutated)


class TestHostileInputs:
    """Every malformed frame dies with FrameError — before any allocation."""

    PAYLOAD = encode_frame(table=sample_table())

    def test_truncated_header(self):
        with pytest.raises(FrameError, match="header"):
            decode_frame(self.PAYLOAD[:10])

    def test_truncated_body(self):
        with pytest.raises(FrameError, match="declares"):
            decode_frame(self.PAYLOAD[:-8])

    def test_trailing_garbage(self):
        with pytest.raises(FrameError):
            decode_frame(self.PAYLOAD + b"\x00" * 8)

    def test_bad_magic(self):
        with pytest.raises(FrameError, match="magic"):
            decode_frame(b"XXXX" + self.PAYLOAD[4:])

    def test_future_version(self):
        with pytest.raises(FrameError, match="version"):
            decode_frame(corrupt(self.PAYLOAD, 4, "<H", framing.FRAME_VERSION + 1))

    def test_nonzero_flags(self):
        with pytest.raises(FrameError, match="flags"):
            decode_frame(corrupt(self.PAYLOAD, 6, "<H", 0x8000))

    def test_oversized_declared_length_never_allocates(self):
        # frame_length (u64 at offset 8) claiming 2**50 bytes must fail
        # the `declared != provided` check, not trigger an allocation.
        with pytest.raises(FrameError, match="declares"):
            decode_frame(corrupt(self.PAYLOAD, 8, "<Q", 1 << 50))

    def test_oversized_meta_length(self):
        with pytest.raises(FrameError):
            decode_frame(corrupt(self.PAYLOAD, 16, "<I", 0xFFFFFFF0))

    def test_malformed_meta_json(self):
        mutated = bytearray(self.PAYLOAD)
        mutated[framing._HEADER_SIZE] = 0xFF  # clobber the meta JSON
        with pytest.raises(FrameError, match="meta"):
            decode_frame(bytes(mutated))

    def test_huge_n_rows_in_meta(self):
        # n_rows lives in the meta JSON; a huge value must be rejected
        # against the actual buffer size, not multiplied into frombuffer.
        payload = encode_frame(
            table=Table(sample_schema(), {"age": [1.0], "score": [2.0], "city": ["paris"]})
        )
        hacked = payload.replace(b'"n_rows":1', b'"n_rows":9' + b"0" * 14, 1)
        # keep header consistent with the new byte length
        hacked = corrupt(hacked, 8, "<Q", len(hacked))
        with pytest.raises(FrameError):
            decode_frame(hacked)

    def test_non_monotone_offsets(self):
        schema = TableSchema([ColumnSpec("s", ColumnKind.CATEGORICAL)])
        payload = bytearray(
            encode_frame(table=Table(schema, {"s": np.array(["ab", "cd"], dtype=object)}))
        )
        # Payload section: bitmap(1) pad(3) offsets(3×u32) data(4). The
        # offsets start 4 bytes into the 8-aligned payload section.
        start = len(payload) - _section_len(payload)
        struct.pack_into("<I", payload, start + 4 + 4, 0xFFFF)  # offsets[1] > offsets[2]
        with pytest.raises(FrameError, match="offsets"):
            decode_frame(bytes(payload))

    def test_hostile_array_dtype_rejected(self):
        payload = encode_frame(arrays={"a": np.arange(3, dtype=np.float64)})
        hacked = payload.replace(b'"dtype":"<f8"', b'"dtype":"|O8"', 1)
        hacked = corrupt(hacked, 8, "<Q", len(hacked))
        with pytest.raises(FrameError, match="dtype"):
            decode_frame(hacked)

    def test_iter_frames_size_limit(self):
        with pytest.raises(FrameSizeError):
            list(iter_frames([self.PAYLOAD], max_frame_bytes=len(self.PAYLOAD) - 1))

    def test_iter_frames_truncated_tail(self):
        with pytest.raises(FrameError, match="trailing"):
            list(iter_frames([self.PAYLOAD, self.PAYLOAD[:11]]))

    def test_iter_frames_splits_across_blocks(self):
        stream = self.PAYLOAD * 3
        blocks = [stream[i : i + 7] for i in range(0, len(stream), 7)]
        frames = list(iter_frames(blocks))
        assert len(frames) == 3
        assert all(bytes(f) == self.PAYLOAD for f in frames)


def _section_len(payload: bytes) -> int:
    bitmap = 1
    body = bitmap + 3 + 3 * 4 + 4
    return body + (-body) % 8


class TestFrameFiles:
    def test_write_read_round_trip(self, tmp_path):
        table = sample_table()
        path = tmp_path / "t.rprf"
        table.to_frame_file(path, chunk_rows=2)
        loaded = Table.from_frame_file(path, schema=table.schema)
        assert loaded.n_rows == table.n_rows
        got = loaded.slice_rows(0, table.n_rows)
        for spec in table.schema:
            np.testing.assert_array_equal(
                np.asarray(got.column(spec.name), dtype=object if not spec.is_numeric else None),
                table.column(spec.name),
            )

    def test_lazy_columns_serve_windows(self, tmp_path):
        rng = np.random.default_rng(3)
        schema = TableSchema(
            [ColumnSpec("v", ColumnKind.NUMERIC), ColumnSpec("s", ColumnKind.CATEGORICAL)]
        )
        table = Table(
            schema,
            {
                "v": rng.normal(size=1000),
                "s": np.array([f"cat{i % 5}" for i in range(1000)], dtype=object),
            },
        )
        path = tmp_path / "big.rprf"
        with FrameFileWriter(path, chunk_rows=128) as writer:
            writer.write(table)
        loaded = open_frame_file(path, schema=schema)
        # Windows that straddle frame boundaries must reassemble exactly.
        for start, stop in [(0, 10), (120, 140), (250, 640), (990, 1000), (0, 1000)]:
            np.testing.assert_array_equal(
                loaded.column("v")[start:stop], table.column("v")[start:stop]
            )
            assert list(loaded.column("s")[start:stop]) == list(
                table.column("s")[start:stop]
            )
        # Fancy indexing and scalar access work for e.g. Table.take/row.
        idx = np.array([3, 500, 999])
        np.testing.assert_array_equal(loaded.column("v")[idx], table.column("v")[idx])
        assert loaded.column("s")[567] == table.column("s")[567]

    def test_file_is_valid_stream_body(self, tmp_path):
        table = sample_table()
        path = tmp_path / "t.rprf"
        table.to_frame_file(path, chunk_rows=2)
        frames = list(framing.iter_file_frames(path))
        assert len(frames) == 3  # 5 rows in chunks of 2
        decoded = [decode_frame(f, schema=table.schema).table for f in frames]
        assert sum(t.n_rows for t in decoded) == table.n_rows

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.rprf"
        path.write_bytes(b"")
        with pytest.raises(FrameError):
            open_frame_file(path)


class TestVectorizedFromRecords:
    def test_junk_numeric_value_raises_schema_error(self):
        schema = TableSchema([ColumnSpec("n", ColumnKind.NUMERIC)])
        with pytest.raises(SchemaError, match="'n'"):
            Table.from_records(schema, [{"n": 1.0}, {"n": "not-a-number"}])

    def test_nested_value_raises_schema_error(self):
        schema = TableSchema([ColumnSpec("n", ColumnKind.NUMERIC)])
        with pytest.raises(SchemaError):
            Table.from_records(schema, [{"n": [1.0, 2.0]}, {"n": [3.0, 4.0]}])

    def test_none_becomes_nan(self):
        schema = TableSchema([ColumnSpec("n", ColumnKind.NUMERIC)])
        table = Table.from_records(schema, [{"n": None}, {"n": 2.0}, {}])
        np.testing.assert_array_equal(np.isnan(table.column("n")), [True, False, True])


class TestGatewayHostileFrames:
    """Hostile frames over real sockets: clean 400/413, no crash."""

    @pytest.fixture(scope="class")
    def served(self):
        from repro.runtime import ValidationService
        from repro.serve import ValidationGateway
        from repro.serve.cli import fit_demo_pipeline

        pipeline = fit_demo_pipeline()
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", pipeline)
        with ValidationGateway(service, port=0, max_body_bytes=1 << 20) as gateway:
            yield pipeline, gateway
        service.close()

    def post(self, gateway, path, body, content_type=FRAME_CONTENT_TYPE):
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port)
        try:
            connection.request(
                "POST", path, body=body, headers={"Content-Type": content_type}
            )
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def frame_for(self, pipeline, n=8) -> bytes:
        rng = np.random.default_rng(0)
        x = rng.uniform(0.1, 0.9, n)
        table = Table(
            pipeline.preprocessor.schema,
            {
                "x": x,
                "y": 2.0 * x,
                "z": 1.0 - x,
                "c": np.where(x > 0.5, "hi", "lo"),
            },
        )
        return encode_frame(table=table)

    def test_valid_frame_validates(self, served):
        pipeline, gateway = served
        status, raw = self.post(
            gateway, "/v1/pipelines/demo/validate", self.frame_for(pipeline)
        )
        assert status == 200
        assert json.loads(raw)["kind"] == "validation_report"

    def test_truncated_frame_400(self, served):
        pipeline, gateway = served
        status, raw = self.post(
            gateway, "/v1/pipelines/demo/validate", self.frame_for(pipeline)[:40]
        )
        assert status == 400 and b"error" in raw

    def test_bad_magic_400(self, served):
        pipeline, gateway = served
        body = b"EVIL" + self.frame_for(pipeline)[4:]
        status, _ = self.post(gateway, "/v1/pipelines/demo/validate", body)
        assert status == 400

    def test_oversized_stream_frame_413(self, served):
        pipeline, gateway = served
        evil = bytearray(self.frame_for(pipeline))
        struct.pack_into("<Q", evil, 8, 1 << 50)
        status, _ = self.post(
            gateway, "/v1/pipelines/demo/validate_stream", bytes(evil)
        )
        assert status == 413

    def test_tableless_frame_400(self, served):
        _, gateway = served
        status, raw = self.post(
            gateway, "/v1/pipelines/demo/validate", encode_frame(extra={"hi": 1})
        )
        assert status == 400 and b"no table" in raw

    def test_schema_mismatch_400(self, served):
        _, gateway = served
        schema = TableSchema([ColumnSpec("wrong", ColumnKind.NUMERIC)])
        body = encode_frame(table=Table(schema, {"wrong": [1.0]}))
        status, _ = self.post(gateway, "/v1/pipelines/demo/validate", body)
        assert status == 400

    def test_gateway_survives_hostility(self, served):
        # After every attack above the server must still serve.
        pipeline, gateway = served
        status, _ = self.post(
            gateway, "/v1/pipelines/demo/validate", self.frame_for(pipeline)
        )
        assert status == 200
