"""Unit tests for DQuaG core components: config, model, losses,
thresholds, trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DQuaGConfig,
    DQuaGModel,
    DatasetDecisionRule,
    ThresholdCalibration,
    Trainer,
    compute_sample_weights,
    dquag_loss,
    flag_feature_cells,
)
from repro.exceptions import ConfigurationError, TrainingError, ValidationError
from repro.graph import FeatureGraph
from repro.nn import Tensor


@pytest.fixture
def graph() -> FeatureGraph:
    return FeatureGraph(["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d")])


@pytest.fixture
def small_config() -> DQuaGConfig:
    return DQuaGConfig(hidden_dim=8, epochs=2, feature_embedding_dim=3, batch_size=16)


class TestConfig:
    def test_defaults_match_paper(self):
        config = DQuaGConfig()
        assert config.architecture == "gat_gin"
        assert config.hidden_dim == 64
        assert config.n_layers == 4
        assert config.learning_rate == 0.01
        assert config.batch_size == 128
        assert config.threshold_percentile == 95.0
        assert config.dataset_rule_n == 1.2
        assert config.alpha == 1.0 and config.beta == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"architecture": "transformer"},
            {"hidden_dim": 0},
            {"n_layers": 0},
            {"learning_rate": -0.1},
            {"batch_size": 0},
            {"epochs": 0},
            {"threshold_percentile": 100.0},
            {"dataset_rule_n": 0.0},
            {"feature_sigma": 0.0},
            {"alpha": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DQuaGConfig(**kwargs)

    def test_dict_roundtrip(self):
        config = DQuaGConfig(hidden_dim=32, epochs=7)
        assert DQuaGConfig.from_dict(config.to_dict()) == config

    def test_node_input_dim(self):
        assert DQuaGConfig(feature_embedding_dim=7).node_input_dim == 8


class TestModel:
    def test_forward_shapes(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        x = Tensor(np.random.default_rng(0).uniform(size=(5, 4)))
        recon, repair = model(x)
        assert recon.shape == (5, 4)
        assert repair.shape == (5, 4)

    def test_input_width_checked(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((5, 7))))

    def test_decoders_are_independent(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        x = Tensor(np.random.default_rng(0).uniform(size=(3, 4)))
        recon, repair = model(x)
        assert not np.allclose(recon.numpy(), repair.numpy())

    def test_reconstruction_errors_chunked_consistent(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        matrix = np.random.default_rng(1).uniform(size=(50, 4))
        full = model.reconstruction_errors(matrix, chunk_size=50)
        chunked = model.reconstruction_errors(matrix, chunk_size=7)
        np.testing.assert_allclose(full, chunked)

    def test_sample_errors_mean_over_features(self):
        cells = np.array([[1.0, 3.0], [0.0, 2.0]])
        np.testing.assert_allclose(DQuaGModel.sample_errors(cells), [2.0, 1.0])

    def test_deterministic_construction(self, graph, small_config):
        a = DQuaGModel(graph, small_config, rng=3)
        b = DQuaGModel(graph, small_config, rng=3)
        x = Tensor(np.random.default_rng(2).uniform(size=(2, 4)))
        np.testing.assert_array_equal(a(x)[0].numpy(), b(x)[0].numpy())

    def test_zero_embedding_dim(self, graph):
        config = DQuaGConfig(hidden_dim=8, epochs=1, feature_embedding_dim=0)
        model = DQuaGModel(graph, config, rng=0)
        recon, _ = model(Tensor(np.zeros((2, 4))))
        assert recon.shape == (2, 4)


class TestSampleWeights:
    def test_lower_error_gets_higher_weight(self):
        weights = compute_sample_weights(np.array([0.1, 1.0, 5.0]))
        assert weights[0] > weights[1] > weights[2]

    def test_mean_normalized_to_one(self):
        weights = compute_sample_weights(np.random.default_rng(0).exponential(size=100))
        assert weights.mean() == pytest.approx(1.0)

    def test_constant_errors_uniform_weights(self):
        weights = compute_sample_weights(np.full(10, 2.0))
        np.testing.assert_allclose(weights, 1.0)

    def test_explicit_temperature(self):
        errors = np.array([0.0, 1.0])
        sharp = compute_sample_weights(errors, temperature=0.1)
        soft = compute_sample_weights(errors, temperature=10.0)
        assert sharp[1] / sharp[0] < soft[1] / soft[0]

    def test_empty_input(self):
        assert compute_sample_weights(np.array([])).size == 0

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            compute_sample_weights(np.zeros((2, 2)))


class TestLoss:
    def test_loss_components_positive(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        target = np.random.default_rng(0).uniform(size=(8, 4))
        recon, repair = model(Tensor(target))
        parts = dquag_loss(recon, repair, target)
        assert parts.validation > 0 and parts.repair > 0
        assert float(parts.total.numpy()) == pytest.approx(parts.validation + parts.repair, rel=1e-9)

    def test_alpha_beta_scale_components(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        target = np.random.default_rng(0).uniform(size=(8, 4))
        recon, repair = model(Tensor(target))
        only_validation = dquag_loss(recon, repair, target, alpha=1.0, beta=0.0)
        np.testing.assert_allclose(float(only_validation.total.numpy()), only_validation.validation)

    def test_gradients_flow_to_both_decoders(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        target = np.random.default_rng(0).uniform(size=(8, 4))
        recon, repair = model(Tensor(target))
        dquag_loss(recon, repair, target).total.backward()
        val_grads = [p.grad for p in model.validation_decoder.parameters()]
        rep_grads = [p.grad for p in model.repair_decoder.parameters()]
        assert all(g is not None for g in val_grads)
        assert all(g is not None for g in rep_grads)


class TestThresholds:
    def test_percentile_threshold(self):
        errors = np.arange(100, dtype=float)
        calib = ThresholdCalibration.from_clean_errors(errors, percentile=95.0)
        assert calib.threshold == pytest.approx(np.percentile(errors, 95))
        assert calib.clean_max == 99.0

    def test_empty_errors_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdCalibration.from_clean_errors(np.array([]))

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdCalibration.from_clean_errors(np.ones(10), percentile=0.0)

    def test_flag_rows(self):
        calib = ThresholdCalibration.from_clean_errors(np.linspace(0, 1, 100), percentile=90.0)
        flags = calib.flag_rows(np.array([0.5, 0.95]))
        assert not flags[0] and flags[1]

    def test_dataset_rule_cutoff(self):
        rule = DatasetDecisionRule(percentile=95.0, n_multiplier=1.2)
        assert rule.cutoff == pytest.approx(0.06)
        assert not rule.is_problematic(0.05)
        assert rule.is_problematic(0.07)

    def test_flag_feature_cells_single_outlier(self):
        errors = np.full((1, 12), 0.01)
        errors[0, 3] = 5.0
        flags = flag_feature_cells(errors, np.array([True]), sigma=2.5)
        assert flags[0, 3]
        assert flags.sum() == 1

    def test_flag_feature_cells_respects_row_mask(self):
        errors = np.full((2, 12), 0.01)
        errors[:, 3] = 5.0
        flags = flag_feature_cells(errors, np.array([True, False]), sigma=2.5)
        assert flags[0, 3] and not flags[1, 3]

    def test_flag_feature_cells_paper_sigma_unreachable(self):
        # With 12 features and one outlier, max z-score is sqrt(11) ≈ 3.3:
        # the literal paper rule (k=5) cannot fire (see config docstring).
        errors = np.zeros((1, 12))
        errors[0, 0] = 100.0
        assert flag_feature_cells(errors, sigma=5.0).sum() == 0
        assert flag_feature_cells(errors, sigma=2.5).sum() == 1

    def test_flag_feature_cells_requires_2d(self):
        with pytest.raises(ValidationError):
            flag_feature_cells(np.zeros(5))


class TestTrainer:
    def test_loss_decreases(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        rng = np.random.default_rng(0)
        base = rng.uniform(size=(200, 1))
        matrix = np.hstack([base, base * 0.5 + 0.2, 1.0 - base, base**2])
        history = Trainer(model, small_config).train(matrix, rng=0, epochs=8)
        assert history.epochs[-1].total_loss < history.epochs[0].total_loss
        assert history.converged()

    def test_clean_errors_collected(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        matrix = np.random.default_rng(0).uniform(size=(64, 4))
        history = Trainer(model, small_config).train(matrix, rng=0, epochs=1)
        assert history.clean_sample_errors.shape == (64,)
        assert (history.clean_sample_errors >= 0).all()

    def test_empty_matrix_rejected(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        with pytest.raises(TrainingError):
            Trainer(model, small_config).train(np.zeros((0, 4)), rng=0)

    def test_wrong_width_rejected(self, graph, small_config):
        model = DQuaGModel(graph, small_config, rng=0)
        with pytest.raises(TrainingError):
            Trainer(model, small_config).train(np.zeros((10, 9)), rng=0)

    def test_deterministic_training(self, graph, small_config):
        matrix = np.random.default_rng(0).uniform(size=(64, 4))
        histories = []
        for _ in range(2):
            model = DQuaGModel(graph, small_config, rng=5)
            histories.append(Trainer(model, small_config).train(matrix, rng=5, epochs=2))
        assert histories[0].epochs[-1].total_loss == pytest.approx(
            histories[1].epochs[-1].total_loss, rel=1e-12
        )
