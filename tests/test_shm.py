"""Shared-memory data plane tests: slab lifecycle, orphan reaping,
pool budgets, parity with the pickled path, and crash recovery.

The standing invariant mirrors every other serving-tier suite: shared
memory is an *optimization* — reports produced through slabs must be
bit-identical to the pickled fan-out and to the one-shot path, and no
request may ever fail because shm is unavailable, budget-exhausted, or
broken mid-flight. The lifecycle half pins the crash-safety contract:
double-close is idempotent, dropped references unlink via finalizers,
a dead creator's segments are reaped on the next pool open, and a
worker dying mid-shard falls back to the pickled path with the same
answer.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.runtime import ParallelValidator, ValidationService
from repro.runtime.shm import (
    SLAB_PREFIX,
    SharedSlab,
    SlabPool,
    attach_window,
    reap_orphans,
    shm_available,
    slab_budget_bytes,
)
from tests.test_sharding import make_table

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this platform"
)

_SHM_DIR = Path("/dev/shm")


def slab_entries() -> set:
    """The repro slab segments currently present in /dev/shm."""
    if not _SHM_DIR.is_dir():
        return set()
    return {entry.name for entry in _SHM_DIR.iterdir() if entry.name.startswith(SLAB_PREFIX)}


@pytest.fixture(scope="module")
def fitted():
    train = make_table(500, seed=0)
    pipeline = DQuaG(DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)).fit(train, rng=0)
    return pipeline, make_table(1100, seed=2)


# ---------------------------------------------------------------------------
# slab lifecycle
# ---------------------------------------------------------------------------
class TestSharedSlab:
    def test_matrix_visible_through_attach(self):
        with SharedSlab.create(16, 4) as slab:
            slab.matrix[:] = np.arange(64, dtype=np.float64).reshape(16, 4)
            attached = SharedSlab.attach(slab.name, 16, 4)
            try:
                np.testing.assert_array_equal(attached.matrix, slab.matrix)
                # same physical pages, not a copy
                attached.matrix[3, 2] = -1.0
                assert slab.matrix[3, 2] == -1.0
            finally:
                attached.close()
        assert slab.name not in slab_entries()

    def test_byte_slab_roundtrip_and_no_matrix_view(self):
        payload = b"x" * 100
        with SharedSlab.create_bytes(len(payload)) as slab:
            slab.buf[: len(payload)] = payload
            attached = SharedSlab.attach_bytes(slab.name)
            try:
                assert bytes(attached.buf[: len(payload)]) == payload
                with pytest.raises(TypeError):
                    attached.matrix
            finally:
                attached.close()

    def test_double_close_is_idempotent(self):
        slab = SharedSlab.create(4, 2)
        assert not slab.closed
        slab.close()
        assert slab.closed
        slab.close()  # second close: no-op, no raise
        assert slab.closed
        assert slab.name not in slab_entries()

    def test_dropped_reference_unlinks_via_finalizer(self):
        slab = SharedSlab.create(8, 2)
        name = slab.name
        assert name in slab_entries()
        del slab
        import gc

        gc.collect()
        assert name not in slab_entries()

    def test_attach_rejects_undersized_segment(self):
        with SharedSlab.create(4, 2) as slab:
            with pytest.raises(ValueError, match="bytes"):
                SharedSlab.attach(slab.name, 4096, 64)

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            SharedSlab.create(0, 4)
        with pytest.raises(ValueError):
            SharedSlab.create(4, 0)
        with pytest.raises(ValueError):
            SharedSlab.create_bytes(0)

    def test_spec_window_roundtrip(self):
        with SharedSlab.create(10, 3) as slab:
            slab.matrix[:] = np.arange(30, dtype=np.float64).reshape(10, 3)
            window, holder = attach_window(slab.spec(rows=10, start=2, stop=7), cache=False)
            try:
                np.testing.assert_array_equal(window, slab.matrix[2:7])
            finally:
                assert holder is not None  # one-shot specs hand back the mapping
                holder.close()


# ---------------------------------------------------------------------------
# orphan reaping
# ---------------------------------------------------------------------------
class TestOrphanReaping:
    def test_dead_creator_segment_is_reaped(self):
        # A child creates a slab and dies hard (os._exit skips every
        # finalizer) — exactly the crashed-parent case reap_orphans is for.
        script = (
            "import os, sys\n"
            "from repro.runtime.shm import SharedSlab\n"
            "slab = SharedSlab.create(64, 4)\n"
            "print(slab.name, flush=True)\n"
            "os._exit(1)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        name = result.stdout.strip()
        assert name.startswith(SLAB_PREFIX), result.stderr
        assert name in slab_entries()  # leaked: the child never unlinked
        assert reap_orphans() >= 1
        assert name not in slab_entries()

    def test_live_creator_segment_survives_reaping(self):
        with SharedSlab.create(8, 2) as slab:
            reap_orphans()
            assert slab.name in slab_entries()
        assert slab.name not in slab_entries()


# ---------------------------------------------------------------------------
# slab pool
# ---------------------------------------------------------------------------
class TestSlabPool:
    def test_ring_round_robin_reuses_slabs(self):
        pool = SlabPool.open(3, capacity_rows=32, n_features=4, budget_bytes=1 << 20)
        assert pool is not None
        try:
            assert len(pool) == 3
            assert pool.slab(0) is pool.slab(3)
            assert pool.slab(1) is not pool.slab(2)
            assert pool.nbytes == 3 * 32 * 4 * 8
        finally:
            pool.close()
        assert not slab_entries() & {slab.name for slab in pool.slabs}

    def test_budget_clamps_ring_then_declines(self):
        slab_bytes = 32 * 4 * 8
        clamped = SlabPool.open(8, 32, 4, budget_bytes=2 * slab_bytes)
        assert clamped is not None and len(clamped) == 2
        clamped.close()
        # fewer than 2 affordable slabs → nothing to overlap → decline
        assert SlabPool.open(8, 32, 4, budget_bytes=slab_bytes) is None
        assert SlabPool.open(8, 32, 4, budget_bytes=0) is None

    def test_double_close_is_idempotent(self):
        pool = SlabPool.open(2, 16, 2, budget_bytes=1 << 20)
        assert pool is not None
        pool.close()
        pool.close()

    def test_budget_resolution_order(self, monkeypatch):
        assert slab_budget_bytes(12345) == 12345
        monkeypatch.setenv("REPRO_SHM_BUDGET_MB", "2")
        assert slab_budget_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_SHM_BUDGET_MB", "garbage")
        assert slab_budget_bytes() == 1 << 30


# ---------------------------------------------------------------------------
# parity: shm == pickled == one-shot
# ---------------------------------------------------------------------------
class TestShmParity:
    def test_table_report_bit_identical_to_pickled_and_one_shot(self, fitted):
        pipeline, table = fitted
        reference = pipeline.streaming_validator(chunk_size=256).validate_table(table)
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=256, use_shm=True
        ) as shm_validator:
            shm_report = shm_validator.validate_table(table)
            assert shm_validator.shm_stats["shm_tables"] == 1
            assert shm_validator.shm_stats["fallbacks"] == 0
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=256, use_shm=False
        ) as pickled_validator:
            pickled_report = pickled_validator.validate_table(table)
            assert pickled_validator.shm_stats["shm_tables"] == 0
        assert shm_report.to_dict() == reference.to_dict()
        assert pickled_report.to_dict() == reference.to_dict()

    def test_stream_summary_bit_identical_and_slabs_reused(self, fitted):
        pipeline, table = fitted
        chunks = [table.slice_rows(i, min(i + 90, table.n_rows)) for i in range(0, table.n_rows, 90)]
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=128, chunks_per_shard=2, use_shm=False
        ) as pickled_validator:
            reference = pickled_validator.validate_stream(iter(chunks))
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=128, chunks_per_shard=2, use_shm=True
        ) as shm_validator:
            summary = shm_validator.validate_stream(iter(chunks))
            shards = shm_validator.shm_stats["shm_stream_shards"]
            assert shards > 2  # more shards than ring slabs → segments were reused
            assert shm_validator.shm_stats["fallbacks"] == 0
        assert summary.to_dict() == reference.to_dict()

    def test_exhausted_budget_falls_back_with_same_answer(self, fitted):
        pipeline, table = fitted
        reference = pipeline.streaming_validator(chunk_size=256).validate_table(table)
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=256, use_shm=True, slab_budget=64
        ) as validator:
            report = validator.validate_table(table)
            assert validator.shm_stats["fallbacks"] == 1
            assert validator.shm_stats["shm_tables"] == 0
        assert report.to_dict() == reference.to_dict()

    def test_no_segments_leak_after_validator_close(self, fitted):
        pipeline, table = fitted
        before = slab_entries()
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=256, use_shm=True
        ) as validator:
            validator.validate_table(table)
        assert slab_entries() <= before

    def test_worker_death_mid_shard_recovers_with_same_answer(self, fitted):
        pipeline, table = fitted
        reference = pipeline.streaming_validator(chunk_size=256).validate_table(table)
        with ParallelValidator.from_pipeline(
            pipeline, workers=2, chunk_size=256, use_shm=True
        ) as validator:
            pool = validator._ensure_pool()
            # Warm the workers up, then kill them all: the next shm drain
            # hits BrokenProcessPool mid-shard and must replay the shard
            # through a fresh pool on the pickled path.
            validator.validate_table(table)
            for pid in list(pool._processes):
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and any(
                process.is_alive() for process in pool._processes.values()
            ):
                time.sleep(0.05)
            report = validator.validate_table(table)
            assert validator.shm_stats["recoveries"] >= 1
        assert report.to_dict() == reference.to_dict()


# ---------------------------------------------------------------------------
# gateway slab ingest (X-Repro-Shm) end to end
# ---------------------------------------------------------------------------
class TestGatewayShmIngest:
    @pytest.fixture(scope="class")
    def served(self, fitted):
        from repro.serve import AsyncGateway

        pipeline, table = fitted
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", pipeline)
        gateway = AsyncGateway(service, port=0, shm_ingest=True).start()
        yield gateway, table
        gateway.close()
        service.close()

    @staticmethod
    def ndjson_stream(table, chunk_rows: int = 200) -> bytes:
        lines = []
        for start in range(0, table.n_rows, chunk_rows):
            chunk = table.slice_rows(start, min(start + chunk_rows, table.n_rows))
            records = [
                {name: chunk.column(name)[i] for name in chunk.schema.names}
                for i in range(chunk.n_rows)
            ]
            for record in records:
                for key, value in record.items():
                    if isinstance(value, (np.floating, np.integer)):
                        record[key] = float(value)
            lines.append(json.dumps({"records": records}))
        return ("\n".join(lines) + "\n").encode("utf-8")

    def test_slab_request_matches_plain_body(self, served):
        gateway, table = served
        assert gateway.shm_ingest
        body = self.ndjson_stream(table)

        conn = HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/pipelines/demo/validate_stream", body=body,
                headers={"Content-Type": "application/x-ndjson"},
            )
            plain = conn.getresponse()
            plain_lines = plain.read().decode().strip().splitlines()
            assert plain.status == 200

            slab = SharedSlab.create_bytes(len(body))
            try:
                slab.buf[: len(body)] = body
                conn.request(
                    "POST", "/v1/pipelines/demo/validate_stream", body=None,
                    headers={
                        "Content-Type": "application/x-ndjson",
                        "X-Repro-Shm": f"{slab.name};{len(body)}",
                    },
                )
                shm_response = conn.getresponse()
                shm_lines = shm_response.read().decode().strip().splitlines()
                assert shm_response.status == 200
            finally:
                slab.close()
        finally:
            conn.close()
        # every ack line and the final summary: byte-identical streams
        assert shm_lines == plain_lines

    def test_healthz_advertises_ingest(self, served):
        gateway, _ = served
        conn = HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            conn.request("GET", "/v1/healthz")
            payload = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert payload["shm_ingest"] is True

    def test_slab_header_refused_when_ingest_disabled(self, fitted):
        from repro.serve import AsyncGateway

        pipeline, table = fitted
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", pipeline)
        gateway = AsyncGateway(service, port=0, shm_ingest=False).start()
        try:
            conn = HTTPConnection("127.0.0.1", gateway.port, timeout=10)
            try:
                conn.request(
                    "GET", "/v1/healthz"
                )
                health = json.loads(conn.getresponse().read())
                assert "shm_ingest" not in health  # rev-4 shape when disabled
                conn.request(
                    "POST", "/v1/pipelines/demo/validate_stream", body=None,
                    headers={
                        "Content-Type": "application/x-ndjson",
                        "X-Repro-Shm": "repro-slab-0-deadbeef;64",
                    },
                )
                response = conn.getresponse()
                body = response.read()
                assert response.status == 400
                assert b"not enabled" in body
            finally:
                conn.close()
        finally:
            gateway.close()
            service.close()

    def test_unattachable_slab_is_400_not_crash(self, served):
        gateway, _ = served
        conn = HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/pipelines/demo/validate_stream", body=None,
                headers={
                    "Content-Type": "application/x-ndjson",
                    "X-Repro-Shm": "repro-slab-0-000000000000;64",
                },
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 400
            assert b"attach" in body
        finally:
            conn.close()


# ---------------------------------------------------------------------------
# router slab scatter end to end (same-host replicas)
# ---------------------------------------------------------------------------
class TestRouterShmScatter:
    def test_scatter_lands_in_slabs_with_identical_summary(self, fitted, tmp_path):
        from repro.serve import AsyncGateway, Client, RouterGateway

        pipeline, table = fitted
        archive = tmp_path / "demo.npz"
        pipeline.save(archive)

        services, gateways = [], []
        for _ in range(3):  # [0] = single-node reference, [1:] = replicas
            service = ValidationService(capacity=2, shard_workers=0)
            service.register("demo", str(archive))
            services.append(service)
            gateways.append(AsyncGateway(service, port=0, shm_ingest=True).start())
        router = RouterGateway(
            [(f"replica-{i}", "127.0.0.1", gw.port) for i, gw in enumerate(gateways[1:])],
            port=0,
            archives={"demo": str(archive)},
            health_interval=0,
        ).start()
        try:
            router.check_workers()  # populate last_payload → shm advertisement
            chunks = [
                table.slice_rows(start, min(start + 200, table.n_rows))
                for start in range(0, table.n_rows, 200)
            ]
            single = Client(port=gateways[0].port).validate_stream("demo", chunks)
            routed = Client(port=router.port).validate_stream("demo", chunks)
            assert routed.to_dict() == single.to_dict()
            assert router._counters["shm_scatters"] >= 2  # one per replica range
            assert router._counters["shm_fallbacks"] == 0
        finally:
            router.close()
            for gateway in gateways:
                gateway.close()
            for service in services:
                service.close()

    def test_disabled_router_never_uses_slabs(self, fitted, tmp_path):
        from repro.serve import AsyncGateway, Client, RouterGateway

        pipeline, table = fitted
        archive = tmp_path / "demo.npz"
        pipeline.save(archive)
        services, gateways = [], []
        for _ in range(2):
            service = ValidationService(capacity=2, shard_workers=0)
            service.register("demo", str(archive))
            services.append(service)
            gateways.append(AsyncGateway(service, port=0, shm_ingest=True).start())
        router = RouterGateway(
            [(f"replica-{i}", "127.0.0.1", gw.port) for i, gw in enumerate(gateways)],
            port=0,
            archives={"demo": str(archive)},
            health_interval=0,
            use_shm=False,
        ).start()
        try:
            router.check_workers()
            chunks = [
                table.slice_rows(start, min(start + 200, table.n_rows))
                for start in range(0, table.n_rows, 200)
            ]
            Client(port=router.port).validate_stream("demo", chunks)
            assert router._counters["shm_scatters"] == 0
        finally:
            router.close()
            for gateway in gateways:
                gateway.close()
            for service in services:
                service.close()


# ---------------------------------------------------------------------------
# service-tier idle pool reaping (satellite: ValidationService)
# ---------------------------------------------------------------------------
class TestIdlePoolReaping:
    def test_idle_pools_reaped_and_counted(self, fitted, tmp_path):
        pipeline, table = fitted
        archive = tmp_path / "demo.npz"
        pipeline.save(archive)
        service = ValidationService(capacity=2, shard_workers=4, shard_idle_timeout=0.2)
        try:
            service.register("demo", str(archive))
            sharded = service.validate_sharded("demo", table, workers=2)
            assert sharded.n_flagged >= 0
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and service.stats_snapshot().pool_reaps == 0:
                time.sleep(0.05)
            stats = service.stats_snapshot()
            assert stats.pool_reaps >= 1
            # the pool is rebuilt transparently on next use
            again = service.validate_sharded("demo", table, workers=2)
            assert again.to_dict() == sharded.to_dict()
        finally:
            service.close()

    def test_no_timeout_means_no_reaper(self, fitted, tmp_path):
        pipeline, table = fitted
        archive = tmp_path / "demo.npz"
        pipeline.save(archive)
        service = ValidationService(capacity=2, shard_workers=4, shard_idle_timeout=None)
        try:
            service.register("demo", str(archive))
            service.validate_sharded("demo", table, workers=2)
            time.sleep(0.3)
            assert service.stats_snapshot().pool_reaps == 0
        finally:
            service.close()
