"""Gradient correctness tests for the autograd engine.

Every primitive's analytic gradient is checked against central finite
differences on random inputs, plus structural tests for accumulation,
graph topology, and the no_grad context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, no_grad

from tests.conftest import finite_difference_grad


def check_unary(op, shape=(3, 4), positive=False, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    if positive:
        x = np.abs(x) + 0.5

    def numeric_fn(arr):
        return float(op(Tensor(arr.copy())).sum().numpy())

    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = finite_difference_grad(numeric_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


class TestUnaryGradients:
    def test_exp(self):
        check_unary(lambda t: t.exp())

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True)

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), positive=True)

    def test_abs(self):
        check_unary(lambda t: t.abs())

    def test_relu(self):
        check_unary(lambda t: t.relu())

    def test_leaky_relu(self):
        check_unary(lambda t: t.leaky_relu(0.2))

    def test_elu(self):
        check_unary(lambda t: t.elu())

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid())

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_softmax(self):
        check_unary(lambda t: (t.softmax(axis=-1) * Tensor(np.arange(12).reshape(3, 4) / 6.0)))

    def test_neg(self):
        check_unary(lambda t: -t)

    def test_pow(self):
        check_unary(lambda t: t**3)

    def test_pow_fractional(self):
        check_unary(lambda t: t**1.5, positive=True)


class TestBinaryGradients:
    @pytest.mark.parametrize(
        "shape_a, shape_b",
        [((3, 4), (3, 4)), ((3, 4), (4,)), ((3, 1), (1, 4)), ((2, 3, 4), (4,))],
    )
    def test_add_broadcast(self, shape_a, shape_b):
        self._check_binary(lambda a, b: a + b, shape_a, shape_b)

    @pytest.mark.parametrize(
        "shape_a, shape_b",
        [((3, 4), (3, 4)), ((3, 4), (4,)), ((2, 3, 4), (3, 4))],
    )
    def test_mul_broadcast(self, shape_a, shape_b):
        self._check_binary(lambda a, b: a * b, shape_a, shape_b)

    def test_sub(self):
        self._check_binary(lambda a, b: a - b, (3, 4), (3, 4))

    def test_div(self):
        self._check_binary(lambda a, b: a / b, (3, 4), (3, 4), positive_b=True)

    @pytest.mark.parametrize(
        "shape_a, shape_b",
        [((3, 4), (4, 5)), ((2, 3, 4), (4, 5)), ((2, 3, 4), (2, 4, 5)), ((5, 2, 3, 4), (4, 2))],
    )
    def test_matmul(self, shape_a, shape_b):
        self._check_binary(lambda a, b: a @ b, shape_a, shape_b)

    def test_matmul_vector_rhs(self):
        self._check_binary(lambda a, b: a @ b, (3, 4), (4,))

    def _check_binary(self, op, shape_a, shape_b, positive_b=False, seed=1):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=shape_a)
        b = rng.normal(size=shape_b)
        if positive_b:
            b = np.abs(b) + 0.5

        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        out = op(ta, tb).sum()
        out.backward()

        expected_a = finite_difference_grad(lambda arr: float(op(Tensor(arr), Tensor(b)).sum().numpy()), a.copy())
        expected_b = finite_difference_grad(lambda arr: float(op(Tensor(a), Tensor(arr)).sum().numpy()), b.copy())
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-5, rtol=1e-4)
        np.testing.assert_allclose(tb.grad, expected_b, atol=1e-5, rtol=1e-4)


class TestReductionGradients:
    @pytest.mark.parametrize("axis, keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum(self, axis, keepdims):
        self._check_reduction(lambda t: t.sum(axis=axis, keepdims=keepdims))

    @pytest.mark.parametrize("axis, keepdims", [(None, False), (0, False), (1, True)])
    def test_mean(self, axis, keepdims):
        self._check_reduction(lambda t: t.mean(axis=axis, keepdims=keepdims))

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max(self, axis):
        # Unique values avoid tie subgradient ambiguity vs finite differences.
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        np.random.default_rng(3).shuffle(x.reshape(-1))
        t = Tensor(x.copy(), requires_grad=True)
        t.max(axis=axis).sum().backward()
        expected = finite_difference_grad(
            lambda arr: float(Tensor(arr).max(axis=axis).sum().numpy()), x.copy()
        )
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def _check_reduction(self, op, shape=(3, 4), seed=2):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=shape)
        t = Tensor(x.copy(), requires_grad=True)
        out = op(t)
        # Weight the output so the gradient isn't trivially uniform.
        weights = np.arange(out.size, dtype=np.float64).reshape(out.shape) / out.size
        (out * Tensor(weights)).sum().backward()
        expected = finite_difference_grad(
            lambda arr: float((op(Tensor(arr)) * Tensor(weights)).sum().numpy()), x.copy()
        )
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)


class TestShapeOpGradients:
    def test_reshape(self):
        check_unary(lambda t: t.reshape(4, 3))

    def test_transpose(self):
        check_unary(lambda t: t.transpose(1, 0))

    def test_transpose_3d(self):
        check_unary(lambda t: t.transpose(2, 0, 1), shape=(2, 3, 4))

    def test_swapaxes(self):
        check_unary(lambda t: t.swapaxes(0, 1), shape=(2, 3, 4))

    def test_getitem_slice(self):
        check_unary(lambda t: t[1:, :2])

    def test_getitem_fancy(self):
        check_unary(lambda t: t[np.array([0, 0, 2])])

    def test_expand_dims_squeeze(self):
        check_unary(lambda t: t.expand_dims(1).squeeze(1))

    def test_broadcast_to(self):
        check_unary(lambda t: t.broadcast_to((5, 3, 4)))

    def test_concatenate(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        Tensor.concatenate([ta, tb], axis=0).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))
        np.testing.assert_allclose(tb.grad, np.ones_like(b))

    def test_stack(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        out = Tensor.stack([ta, tb], axis=0)
        (out * Tensor(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]))).sum().backward()
        np.testing.assert_allclose(ta.grad, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(tb.grad, [4.0, 5.0, 6.0])

    def test_where(self):
        rng = np.random.default_rng(6)
        cond = rng.random((3, 4)) > 0.5
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        Tensor.where(cond, ta, tb).sum().backward()
        np.testing.assert_allclose(ta.grad, cond.astype(float))
        np.testing.assert_allclose(tb.grad, (~cond).astype(float))


class TestGraphMechanics:
    def test_gradient_accumulation_diamond(self):
        # y = x*x + x*x must give dy/dx = 4x (same node used twice).
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x * x
        y.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_deep_chain(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01 + 0.001
        y.backward()
        assert x.grad is not None and np.isfinite(x.grad).all()
        np.testing.assert_allclose(x.grad, [1.01**50], rtol=1e-10)

    def test_backward_requires_grad_error(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach() * x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_grad_shape_mismatch_rejected(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones(3))

    def test_second_backward_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * 3).backward()
        (x * 3).backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_scalar_coercion(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = 2.0 * x + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])
        y2 = 1.0 / x
        y2.sum().backward()

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (5.0 - x).backward()
        np.testing.assert_allclose(x.grad, [-1.0])
        x2 = Tensor(np.array([2.0]), requires_grad=True)
        (4.0 / x2).backward()
        np.testing.assert_allclose(x2.grad, [-1.0])
