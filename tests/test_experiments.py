"""Tests for the experiment harness and per-experiment modules.

All runs use the ``smoke`` scale (tiny models) plus reduced dataset /
method subsets, so the whole file executes in well under a minute while
still exercising every experiment code path end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    ResultTable,
    clear_cache,
    get_pipeline,
    get_splits,
    prepare_splits,
    resolve_scale,
    run_figure4,
    run_repair_eval,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.realworld import run_figure3


SMOKE = ExperimentScale.smoke()


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestScales:
    def test_resolve_by_name(self):
        assert resolve_scale("fast").name == "fast"

    def test_resolve_instance_passthrough(self):
        assert resolve_scale(SMOKE) is SMOKE

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert resolve_scale(None).name == "smoke"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            resolve_scale("warp")

    def test_full_matches_paper_protocol(self):
        full = ExperimentScale.full()
        assert full.n_batches == 50
        assert full.epochs == 40
        assert full.hidden_dim == 64
        assert full.batch_fraction == 0.1


class TestSplitsAndCache:
    def test_splits_disjoint_and_sized(self):
        splits = prepare_splits("hotel", SMOKE, seed=0)
        assert splits.train.n_rows == SMOKE.train_rows
        assert splits.calibration.n_rows == SMOKE.calib_rows
        total = splits.train.n_rows + splits.calibration.n_rows + splits.evaluation.n_rows
        assert total == SMOKE.n_rows
        assert splits.batch_size == round(splits.evaluation.n_rows * 0.1)

    def test_cache_returns_same_objects(self):
        a = get_splits("hotel", SMOKE, seed=0)
        b = get_splits("hotel", SMOKE, seed=0)
        assert a is b
        p1 = get_pipeline("hotel", SMOKE, seed=0)
        p2 = get_pipeline("hotel", SMOKE, seed=0)
        assert p1 is p2

    def test_cache_distinguishes_architecture(self):
        p1 = get_pipeline("hotel", SMOKE, seed=0)
        p2 = get_pipeline("hotel", SMOKE, seed=0, architecture="gcn")
        assert p1 is not p2


class TestResultTable:
    def test_render_contains_rows_and_notes(self):
        table = ResultTable("Demo", ["a", "b"])
        table.add_row("x", 1.23456)
        table.add_note("hello")
        rendered = table.render()
        assert "Demo" in rendered and "1.235" in rendered and "note: hello" in rendered

    def test_row_width_checked(self):
        table = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")


class TestTable1:
    def test_hotel_subset_runs(self):
        result = run_table1(
            scale=SMOKE, seed=0, datasets=("hotel",), methods_subset=("dquag", "deequ_expert")
        )
        assert ("hotel", "Conflicts", "dquag") in result.metrics
        # Structural checks only at smoke scale (4 epochs, 40-row
        # batches); detection-quality claims are asserted at standard
        # scale in benchmarks/bench_table1_synthetic.py.
        for scenario in ("N", "M"):
            assert result.recall("hotel", scenario, "dquag") >= 0.9, scenario
        avg_acc, avg_rec = result.ordinary_average("hotel", "dquag")
        assert 0.0 <= avg_acc <= 1.0 and 0.0 <= avg_rec <= 1.0
        assert "Table 1" in result.render()


class TestFigure3:
    def test_bicycle_runs(self):
        result = run_figure3(
            scale=SMOKE, seed=0, datasets=("bicycle",), methods_subset=("dquag", "deequ_auto")
        )
        assert result.accuracy("bicycle", "dquag") >= 0.75
        # Deequ auto's strictness costs accuracy relative to DQuaG.
        assert result.accuracy("bicycle", "deequ_auto") <= result.accuracy("bicycle", "dquag")
        assert "Figure 3" in result.render()


class TestTable2:
    def test_two_architectures_run(self):
        result = run_table2(
            scale=SMOKE, seed=0, datasets=("bicycle",), architectures=("gat_gin", "gcn"), n_batches=4
        )
        assert ("bicycle", "gat_gin") in result.differences
        assert ("bicycle", "gcn") in result.differences
        # Dirty batches must be flagged more than clean ones.
        assert result.difference("bicycle", "gat_gin") > 0
        assert result.best_architecture("bicycle") in ("gat_gin", "gcn")
        assert "Table 2" in result.render()


class TestFigure4:
    def test_timings_increase_with_rows(self):
        result = run_figure4(
            scale=SMOKE, seed=0, dimensions=(5,), row_counts=(500, 2000, 4000, 8000)
        )
        assert result.seconds(5, 8000) > result.seconds(5, 500)
        assert -1.0 <= result.linearity_r2(5) <= 1.0
        assert "Figure 4" in result.render()

    def test_linearity_needs_three_points(self):
        result = run_figure4(scale=SMOKE, seed=0, dimensions=(5,), row_counts=(500, 1000))
        with pytest.raises(ValueError):
            result.linearity_r2(5)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            run_figure4(scale=SMOKE, seed=0, dimensions=(7,), row_counts=(500, 1000, 1500))


class TestTable3:
    def test_accuracy_improves_with_size(self):
        result = run_table3(scale=SMOKE, seed=0, datasets=("bicycle",), sample_sizes=(10, 100))
        small = result.accuracy("bicycle", 10)
        large = result.accuracy("bicycle", 100)
        assert large >= small
        assert large >= 0.75
        assert "Table 3" in result.render()

    def test_oversized_samples_skipped(self):
        result = run_table3(scale=SMOKE, seed=0, datasets=("bicycle",), sample_sizes=(10, 10**6))
        assert ("bicycle", 10**6) not in result.metrics


class TestRepairEval:
    def test_repair_improves_error_rate(self):
        result = run_repair_eval(scale=SMOKE, seed=0, datasets=("bicycle",))
        outcome = result.outcomes["bicycle"]
        assert outcome.repaired_error_rate < outcome.dirty_error_rate
        assert outcome.n_cells_repaired > 0
        assert "4.6" in result.render()


class TestCli:
    def test_cli_runs_one_experiment(self, capsys):
        # Reuses the cached smoke pipelines via REPRO_SCALE.
        import os

        os.environ["REPRO_SCALE"] = "smoke"
        try:
            exit_code = cli_main(["table3", "--scale", "smoke"])
        finally:
            os.environ.pop("REPRO_SCALE", None)
        assert exit_code == 0
        assert "Table 3" in capsys.readouterr().out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["table9"])

    def test_cli_out_writes_protocol_json(self, tmp_path, capsys):
        import json
        import os

        from repro.experiments.reporting import ResultTable

        out = tmp_path / "results.json"
        os.environ["REPRO_SCALE"] = "smoke"
        try:
            exit_code = cli_main(["table3", "--scale", "smoke", "--out", str(out)])
        finally:
            os.environ.pop("REPRO_SCALE", None)
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "experiment_results"
        table = ResultTable.from_dict(payload["results"]["table3"])
        assert "Table 3" in table.title
        assert table.rows
