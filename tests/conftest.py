"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

# Unit tests must never reuse weight archives trained by earlier code:
# the experiment disk cache is for the benchmark/CLI workflows only.
os.environ.setdefault("REPRO_NO_DISK_CACHE", "1")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def finite_difference_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad
