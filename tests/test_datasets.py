"""Tests for the six dataset simulators: schema fidelity, dependency
structure, clean invariants, and real-world dirty variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    TaxiGenerator,
    dataset_names,
    get_generator,
    load_dataset,
)

REAL_WORLD = ("airbnb", "bicycle", "playstore")
CLEAN_SOURCE = ("taxi", "hotel", "credit")


class TestRegistry:
    def test_all_six_registered(self):
        assert dataset_names() == sorted(["airbnb", "bicycle", "playstore", "taxi", "hotel", "credit"])

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_generator("mnist")

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_load_clean(self, name):
        bundle = load_dataset(name, n_rows=300, seed=1)
        assert bundle.clean.n_rows == 300
        assert bundle.name == name
        assert not bundle.has_dirty

    @pytest.mark.parametrize("name", REAL_WORLD)
    def test_load_with_dirty(self, name):
        bundle = load_dataset(name, n_rows=500, seed=1, with_dirty=True)
        assert bundle.has_dirty
        assert bundle.dirty.n_rows == 500
        assert bundle.dirty_report.n_dirty_rows > 0

    @pytest.mark.parametrize("name", CLEAN_SOURCE)
    def test_clean_source_has_no_dirty(self, name):
        with pytest.raises(NotImplementedError):
            load_dataset(name, n_rows=200, seed=1, with_dirty=True)


@pytest.mark.parametrize("name", sorted(DATASETS))
class TestCommonProperties:
    def test_schema_matches_table(self, name):
        generator = get_generator(name)
        table = generator.generate_clean(200, rng=0)
        assert table.schema == generator.schema()

    def test_deterministic(self, name):
        generator = get_generator(name)
        a = generator.generate_clean(150, rng=42)
        b = generator.generate_clean(150, rng=42)
        for column in a.schema.numeric_names:
            np.testing.assert_array_equal(a[column], b[column])

    def test_clean_is_complete(self, name):
        table = get_generator(name).generate_clean(300, rng=0)
        assert table.missing_mask().sum() == 0

    def test_categories_within_declared_domain(self, name):
        generator = get_generator(name)
        table = generator.generate_clean(300, rng=0)
        for spec in table.schema:
            if spec.is_categorical and spec.categories:
                assert set(table[spec.name]) <= set(spec.categories)

    def test_knowledge_edges_reference_schema(self, name):
        generator = get_generator(name)
        names = set(generator.schema().names)
        for a, b in generator.knowledge_edges():
            assert a in names and b in names and a != b


class TestHotelStructure:
    def test_babies_never_unaccompanied(self):
        table = get_generator("hotel").generate_clean(2000, rng=0)
        unaccompanied = (table["babies"] > 0) & (table["adults"] == 0)
        assert not unaccompanied.any()

    def test_group_bookings_have_multiple_adults(self):
        table = get_generator("hotel").generate_clean(3000, rng=0)
        group = table["customer_type"] == "Group"
        assert (table["adults"][group] >= 2).all()

    def test_adr_depends_on_party_size(self):
        table = get_generator("hotel").generate_clean(3000, rng=0)
        party = table["adults"] + table["children"]
        assert np.corrcoef(party, table["adr"])[0, 1] > 0.3

    def test_resort_pricier_than_city(self):
        table = get_generator("hotel").generate_clean(3000, rng=0)
        resort = table["adr"][table["hotel"] == "Resort Hotel"].mean()
        city = table["adr"][table["hotel"] == "City Hotel"].mean()
        assert resort > city


class TestCreditStructure:
    def test_employment_within_lifetime(self):
        table = get_generator("credit").generate_clean(3000, rng=0)
        assert (np.abs(table["DAYS_EMPLOYED"]) < np.abs(table["DAYS_BIRTH"])).all()

    def test_income_rises_with_education(self):
        table = get_generator("credit").generate_clean(5000, rng=0)
        low = table["AMT_INCOME_TOTAL"][table["NAME_EDUCATION_TYPE"] == "Lower secondary"]
        high = table["AMT_INCOME_TOTAL"][table["NAME_EDUCATION_TYPE"] == "Academic degree"]
        assert high.mean() > low.mean() * 1.3

    def test_pensioners_are_old(self):
        table = get_generator("credit").generate_clean(3000, rng=0)
        pension_age = np.abs(table["DAYS_BIRTH"][table["NAME_INCOME_TYPE"] == "Pensioner"]) / 365.25
        assert pension_age.min() >= 55

    def test_family_members_cover_children(self):
        table = get_generator("credit").generate_clean(3000, rng=0)
        assert (table["CNT_FAM_MEMBERS"] >= table["CNT_CHILDREN"] + 1).all()


class TestAirbnbStructure:
    def test_price_structure(self):
        table = get_generator("airbnb").generate_clean(5000, rng=0)
        manhattan = table["price"][table["neighbourhood_group"] == "Manhattan"].mean()
        bronx = table["price"][table["neighbourhood_group"] == "Bronx"].mean()
        assert manhattan > bronx
        entire = table["price"][table["room_type"] == "Entire home/apt"].mean()
        shared = table["price"][table["room_type"] == "Shared room"].mean()
        assert entire > shared

    def test_coordinates_in_nyc(self):
        table = get_generator("airbnb").generate_clean(3000, rng=0)
        assert table["latitude"].min() > 40.3 and table["latitude"].max() < 41.1
        assert table["longitude"].min() > -74.5 and table["longitude"].max() < -73.5

    def test_dirty_mixture_has_all_error_families(self):
        bundle = load_dataset("airbnb", n_rows=2000, seed=3, with_dirty=True)
        dirty, report = bundle.dirty, bundle.dirty_report
        assert (dirty["price"] == 0).any()
        assert dirty["minimum_nights"].max() >= 365
        assert np.isnan(dirty["reviews_per_month"]).any()
        boroughs = set(bundle.clean["neighbourhood_group"])
        assert any(v not in boroughs for v in dirty["neighbourhood_group"])
        assert 0.05 < report.error_rate() < 0.20


class TestBicycleStructure:
    def test_duration_tracks_distance(self):
        table = get_generator("bicycle").generate_clean(5000, rng=0)
        assert np.corrcoef(table["distance_km"], table["trip_duration"])[0, 1] > 0.8

    def test_durations_positive(self):
        table = get_generator("bicycle").generate_clean(3000, rng=0)
        assert table["trip_duration"].min() > 0

    def test_dirty_mixture(self):
        bundle = load_dataset("bicycle", n_rows=2000, seed=3, with_dirty=True)
        dirty, report = bundle.dirty, bundle.dirty_report
        assert (dirty["trip_duration"] < 0).any()
        assert (dirty["birth_year"] == 1900).any()
        assert np.mean([v is None for v in dirty["gender"]]) > 0.03
        assert 0.10 < report.error_rate() < 0.35


class TestPlayStoreStructure:
    def test_free_apps_cost_nothing(self):
        table = get_generator("playstore").generate_clean(3000, rng=0)
        free = table["app_type"] == "Free"
        assert (table["price"][free] == 0).all()
        assert (table["price"][~free] > 0).all()

    def test_reviews_below_installs(self):
        table = get_generator("playstore").generate_clean(3000, rng=0)
        assert (table["reviews"] <= table["installs"]).all()

    def test_ratings_in_range(self):
        table = get_generator("playstore").generate_clean(3000, rng=0)
        assert table["rating"].min() >= 1.0 and table["rating"].max() <= 5.0

    def test_dirty_mixture(self):
        bundle = load_dataset("playstore", n_rows=2000, seed=3, with_dirty=True)
        dirty = bundle.dirty
        assert dirty["rating"].max() > 5.0  # scale glitch
        free_but_priced = (np.asarray([t == "Free" for t in dirty["app_type"]])) & (dirty["price"] > 0)
        assert free_but_priced.any()
        assert np.isnan(dirty["size_mb"]).any()


class TestTaxiStructure:
    def test_total_is_sum_of_parts(self):
        table = get_generator("taxi").generate_clean(3000, rng=0)
        recomputed = (
            table["fare_amount"]
            + table["tip_amount"]
            + table["tolls_amount"]
            + table["extra"]
            + table["mta_tax"]
            + table["improvement_surcharge"]
        )
        np.testing.assert_allclose(table["total_amount"], recomputed, atol=0.011)

    def test_cash_trips_record_no_tip(self):
        table = get_generator("taxi").generate_clean(3000, rng=0)
        cash = table["payment_type"] == "Cash"
        assert (table["tip_amount"][cash] == 0).all()
        assert (table["tip_amount"][~cash] > 0).all()

    def test_fare_tracks_distance(self):
        table = get_generator("taxi").generate_clean(5000, rng=0)
        assert np.corrcoef(table["trip_distance"], table["fare_amount"])[0, 1] > 0.8

    def test_dimension_subsets_valid(self):
        generator = TaxiGenerator()
        schema_names = set(generator.schema().names)
        subsets = TaxiGenerator.dimension_subsets()
        assert set(subsets) == {5, 10, 18}
        for dims, columns in subsets.items():
            assert len(columns) == dims
            assert set(columns) <= schema_names

    def test_large_generation_is_fast(self):
        import time

        start = time.perf_counter()
        table = get_generator("taxi").generate_clean(200_000, rng=0)
        elapsed = time.perf_counter() - start
        assert table.n_rows == 200_000
        assert elapsed < 10.0  # vectorized path, generous CI margin
