"""Concurrency stress: the service under submit_many vs re-register/evict.

The PR-3 generation counters stopped a re-register() race from
resurrecting stale *weights*; drift monitors are keyed by the same
generations and must obey the same law. These tests hammer
``submit_many`` + ``stats_snapshot()`` + ``monitor_snapshot()`` against
concurrent re-registration and eviction and assert that

* no validation is ever lost or double-counted,
* nothing deadlocks (every join is time-bounded),
* a monitor from before a re-registration is never resurrected after it.
"""

from __future__ import annotations

import threading
from concurrent.futures import wait

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.runtime import ValidationService

JOIN_TIMEOUT = 60.0


def make_table(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    config = DQuaGConfig(hidden_dim=8, epochs=2, batch_size=32, feature_embedding_dim=3)
    pipeline = DQuaG(config).fit(make_table(200, seed=0), rng=0)
    path = tmp_path_factory.mktemp("stress") / "pipeline.npz"
    pipeline.save(path)
    return path


class TestServiceStress:
    def test_counts_survive_reregister_and_evict_races(self, archive):
        n_submitters, batches_each, batch_rows = 4, 25, 50
        with ValidationService(capacity=2, shard_workers=0, monitor_window=8) as service:
            service.register("p", archive)
            stop = threading.Event()
            errors: list[BaseException] = []
            futures_lock = threading.Lock()
            futures = []

            def submitter(worker: int) -> None:
                try:
                    for i in range(batches_each):
                        batch = make_table(batch_rows, seed=1000 * worker + i)
                        future = service.submit("p", batch)
                        with futures_lock:
                            futures.append(future)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def churner() -> None:
                try:
                    while not stop.is_set():
                        service.register("p", archive)  # same path, new generation
                        service.evict("p")
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def reader() -> None:
                try:
                    while not stop.is_set():
                        stats = service.stats_snapshot()
                        assert stats.validations >= 0
                        snapshot = service.monitor_snapshot("p")
                        if snapshot is not None:
                            assert snapshot.window_rows <= snapshot.total_rows
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=submitter, args=(w,)) for w in range(n_submitters)
            ] + [threading.Thread(target=churner), threading.Thread(target=reader)]
            for thread in threads:
                thread.start()
            for thread in threads[:n_submitters]:
                thread.join(timeout=JOIN_TIMEOUT)
                assert not thread.is_alive(), "submitter deadlocked"
            done, not_done = wait(futures, timeout=JOIN_TIMEOUT)
            stop.set()
            for thread in threads[n_submitters:]:
                thread.join(timeout=JOIN_TIMEOUT)
                assert not thread.is_alive(), "background thread deadlocked"

            assert not not_done, "validations deadlocked"
            assert not errors, errors
            reports = [future.result() for future in done]
            assert len(reports) == n_submitters * batches_each

            stats = service.stats_snapshot()
            expected_rows = n_submitters * batches_each * batch_rows
            assert stats.validations == n_submitters * batches_each
            assert stats.rows_validated == expected_rows
            assert stats.pipelines["p"]["validations"] == n_submitters * batches_each
            assert stats.pipelines["p"]["rows_validated"] == expected_rows

    def test_reregister_never_resurrects_a_stale_monitor(self, archive):
        with ValidationService(capacity=2, shard_workers=0, monitor_window=8) as service:
            service.register("p", archive)
            service.validate("p", make_table(60, seed=1))
            before = service.monitor_for("p")
            assert before is not None and before.snapshot().total_rows == 60

            service.register("p", archive)
            after = service.monitor_for("p")
            assert after is not None and after is not before
            # The fresh monitor starts from zero — no stale counts leak in.
            assert after.snapshot().total_rows == 0
            service.validate("p", make_table(40, seed=2))
            assert service.monitor_for("p") is after
            assert after.snapshot().total_rows == 40
            # Late observations into the abandoned monitor are harmless:
            # nothing reads it anymore.
            before.observe_table(make_table(10, seed=3))
            assert service.monitor_for("p").snapshot().total_rows == 40

    def test_monitor_builds_race_to_one_winner(self, archive):
        """Concurrent first-touch builds converge on a single monitor."""
        with ValidationService(capacity=2, shard_workers=0, monitor_window=8) as service:
            service.register("p", archive)
            barrier = threading.Barrier(8)
            winners = []
            winners_lock = threading.Lock()

            def build() -> None:
                barrier.wait(timeout=JOIN_TIMEOUT)
                monitor = service.monitor_for("p")
                with winners_lock:
                    winners.append(monitor)

            threads = [threading.Thread(target=build) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=JOIN_TIMEOUT)
                assert not thread.is_alive(), "monitor build deadlocked"
            assert len(winners) == 8
            assert all(monitor is winners[0] for monitor in winners)

    def test_eviction_under_load_keeps_lifetime_counters(self, archive):
        with ValidationService(capacity=1, shard_workers=0, monitor_window=4) as service:
            service.register("p", archive)
            total = 0
            for i in range(10):
                batch = make_table(30, seed=200 + i)
                service.validate("p", batch)
                total += batch.n_rows
                service.evict("p")  # evict between every request
            stats = service.stats_snapshot()
            assert stats.pipelines["p"]["rows_validated"] == total
            # The monitor survives eviction (weights did not change).
            assert service.monitor_for("p").snapshot().total_rows == total
