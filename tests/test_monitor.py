"""Drift monitoring: scores, baselines, the monitor, and its wiring
through pipeline, service, and gateway.

The acceptance bar from the monitoring PR: a table drawn from a shifted
distribution raises a DriftAlert visible through
``GET /v1/pipelines/{name}/monitor`` and ``/v1/metrics``, while
in-distribution streams stay quiet.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.exceptions import GatewayError, ReproError
from repro.monitor import (
    DriftAlert,
    DriftMonitor,
    EwmaChart,
    MonitorBaseline,
    MonitorSnapshot,
    jensen_shannon_divergence,
    population_stability_index,
    render_prometheus,
)
from repro.runtime import ValidationService
from repro.runtime.streaming import StreamingValidator
from repro.serve import Client, ValidationGateway


def make_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )


def make_table(n: int, seed: int, shift: float = 0.0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    return Table(
        make_schema(),
        {
            "x": x + shift,
            "y": 2.0 * (x + shift) + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


@pytest.fixture(scope="module")
def fitted() -> DQuaG:
    config = DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)
    return DQuaG(config).fit(make_table(500, seed=0), rng=0)


# ---------------------------------------------------------------------------
# drift math
# ---------------------------------------------------------------------------
class TestDriftScores:
    def test_identical_histograms_score_zero(self):
        counts = np.array([40, 30, 20, 10])
        assert population_stability_index(counts, counts) == pytest.approx(0.0, abs=1e-9)
        assert jensen_shannon_divergence(counts, counts) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_mass_scores_high(self):
        expected = np.array([50, 30, 15, 5])
        observed = np.array([5, 15, 30, 50])
        assert population_stability_index(expected, observed) > 0.5
        assert jensen_shannon_divergence(expected, observed) > 0.1

    def test_js_is_symmetric_and_bounded(self):
        a, b = np.array([100, 0, 0]), np.array([0, 0, 100])
        forward = jensen_shannon_divergence(a, b)
        assert forward == pytest.approx(jensen_shannon_divergence(b, a))
        assert 0.0 <= forward <= 1.0

    def test_empty_observation_is_not_drift(self):
        expected = np.array([10, 20, 30])
        assert population_stability_index(expected, np.zeros(3)) == 0.0
        assert jensen_shannon_divergence(expected, np.zeros(3)) == 0.0

    def test_empty_segments_do_not_blow_up(self):
        score = population_stability_index(np.array([100, 0]), np.array([0, 100]))
        assert np.isfinite(score) and score > 1.0


class TestEwmaChart:
    def test_starts_at_center_without_alarm(self):
        chart = EwmaChart(center=0.05)
        assert chart.value == 0.05 and not chart.alarm

    def test_sustained_high_rate_alarms(self):
        chart = EwmaChart(center=0.05, alpha=0.3)
        fired = [chart.observe(0.4, n_rows=500) for _ in range(6)]
        assert fired[-1] and chart.value > chart.limit

    def test_on_target_rate_stays_quiet(self):
        chart = EwmaChart(center=0.05, alpha=0.3)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert not chart.observe(rng.binomial(500, 0.05) / 500, n_rows=500)

    def test_reset(self):
        chart = EwmaChart(center=0.05)
        chart.observe(0.9, 100)
        chart.reset()
        assert chart.value == 0.05 and chart.n_observations == 0 and not chart.alarm

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EwmaChart(center=0.05, alpha=0.0)
        with pytest.raises(ValueError):
            EwmaChart(center=0.05, sigma_limit=-1.0)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
class TestMonitorBaseline:
    def test_from_matrix_structure(self, fitted):
        baseline = fitted.monitor_baseline
        assert baseline.column_names == ["x", "y", "z", "c"]
        assert baseline.n_rows == 500
        categorical = baseline.columns[3]
        assert categorical.labels[0] == "<missing>" and categorical.labels[-1] == "<unknown>"
        assert "lo" in categorical.labels and "hi" in categorical.labels
        for column in baseline.columns:
            assert int(column.counts.sum()) == 500

    def test_binning_accounts_for_every_value(self, fitted):
        baseline = fitted.monitor_baseline
        matrix = fitted.preprocessor.transform(make_table(333, seed=9))
        for counts in baseline.bin_matrix(matrix):
            assert int(counts.sum()) == 333

    def test_sentinel_and_unknown_land_in_outer_segments(self, fitted):
        baseline = fitted.monitor_baseline
        categorical = baseline.columns[3]
        counts = categorical.bin(np.array([-1.0, -1.0, 1.5]))
        assert counts[0] == 2      # missing sentinel
        assert counts[-1] == 1     # unknown placement (1 + margin)

    def test_metadata_round_trip(self, fitted):
        baseline = fitted.monitor_baseline
        clone = MonitorBaseline.from_metadata(
            json.loads(json.dumps(baseline.to_metadata()))
        )
        assert clone.n_rows == baseline.n_rows
        assert clone.flag_rate == baseline.flag_rate
        for ours, theirs in zip(baseline.columns, clone.columns):
            np.testing.assert_array_equal(ours.edges, theirs.edges)
            np.testing.assert_array_equal(ours.counts, theirs.counts)
            assert ours.labels == theirs.labels

    def test_shape_mismatch_rejected(self, fitted):
        with pytest.raises(ReproError):
            fitted.monitor_baseline.bin_matrix(np.zeros((10, 99)))

    def test_zero_rows_rejected(self, fitted):
        with pytest.raises(ReproError):
            MonitorBaseline.from_matrix(fitted.preprocessor, np.empty((0, 4)), flag_rate=0.05)

    def test_missing_edge_follows_configured_sentinel(self):
        # A non-default sentinel (e.g. -0.1) must still land in the
        # <missing> segment, not inside the first category's.
        from repro.data.preprocess import TablePreprocessor

        table = make_table(200, seed=7)
        preprocessor = TablePreprocessor(table.schema, missing_sentinel=-0.1).fit(table)
        baseline = MonitorBaseline.from_matrix(
            preprocessor, preprocessor.transform(table), flag_rate=0.05
        )
        categorical = baseline.columns[3]
        counts = categorical.bin(np.array([-0.1, -0.1, 0.0]))
        assert counts[0] == 2, "sentinel values must hit the <missing> segment"
        assert counts[0] + counts[1] == 3

    def test_constant_column_detects_upward_and_downward_drift(self, fitted):
        # Quantile edges collapse on a constant column; the baseline must
        # still bracket the constant so shifts in either direction move
        # probability mass into a different segment.
        matrix = np.column_stack(
            [
                np.full(500, 0.5),
                np.linspace(0.0, 1.0, 500),
                np.linspace(0.0, 1.0, 500),
                np.zeros(500),
            ]
        )
        baseline = MonitorBaseline.from_matrix(fitted.preprocessor, matrix, flag_rate=0.05)
        constant = baseline.columns[0]
        at = constant.bin(np.full(100, 0.5))
        up = constant.bin(np.full(100, 0.9))
        down = constant.bin(np.full(100, 0.1))
        assert int(np.argmax(at)) not in (int(np.argmax(up)), int(np.argmax(down)))
        assert population_stability_index(constant.counts, up) > 0.25
        assert population_stability_index(constant.counts, down) > 0.25


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------
class TestDriftMonitor:
    def test_clean_traffic_stays_quiet(self, fitted):
        monitor = fitted.monitor(window_chunks=8)
        for i in range(6):
            monitor.observe_table(make_table(200, seed=10 + i), n_flagged=9)
        snapshot = monitor.snapshot()
        assert not snapshot.has_drift
        assert snapshot.alerts == []
        assert snapshot.window_rows == 1200 and snapshot.total_rows == 1200

    def test_shifted_distribution_raises_alert(self, fitted):
        monitor = fitted.monitor(window_chunks=8)
        for i in range(6):
            monitor.observe_table(make_table(200, seed=30 + i, shift=0.5))
        snapshot = monitor.snapshot()
        assert snapshot.has_drift
        assert "x" in snapshot.drifted_columns
        metrics = {alert.metric for alert in snapshot.alerts}
        assert metrics & {"psi", "js"}

    def test_alerts_are_edge_triggered(self, fitted):
        monitor = fitted.monitor(window_chunks=32)
        for i in range(10):
            monitor.observe_table(make_table(200, seed=50 + i, shift=0.5))
        column_alerts = [a for a in monitor.alerts() if a.column == "x"]
        assert len(column_alerts) == 1  # staying drifted does not re-alert

    def test_window_recovers_after_drift_passes(self, fitted):
        monitor = fitted.monitor(window_chunks=3)
        for i in range(3):
            monitor.observe_table(make_table(200, seed=70 + i, shift=0.5))
        assert monitor.snapshot().has_drift
        # Clean chunks push the shifted ones out of the rolling window.
        for i in range(3):
            monitor.observe_table(make_table(200, seed=80 + i), n_flagged=9)
        snapshot = monitor.snapshot()
        assert not snapshot.drifted_columns
        assert snapshot.total_alerts >= 1  # history is retained

    def test_flag_rate_alarm_via_observe_flags(self, fitted):
        monitor = fitted.monitor(window_chunks=8, ewma_alpha=0.4)
        for _ in range(5):
            monitor.observe_flags(n_flagged=150, n_rows=500)
        snapshot = monitor.snapshot()
        assert snapshot.flag_rate_alarm
        assert any(alert.metric == "flag_rate" for alert in snapshot.alerts)

    def test_min_window_rows_gates_column_alerts(self, fitted):
        monitor = fitted.monitor(window_chunks=8, min_window_rows=10_000)
        for i in range(4):
            monitor.observe_table(make_table(200, seed=90 + i, shift=0.5))
        assert not monitor.snapshot().drifted_columns

    def test_injectable_clock_and_timestamps(self, fitted):
        ticks = iter([100.0, 200.0, 300.0])
        monitor = fitted.monitor(window_chunks=8, clock=lambda: next(ticks))
        for i in range(3):
            monitor.observe_table(make_table(50, seed=100 + i))
        snapshot = monitor.snapshot()
        assert snapshot.first_timestamp == 100.0 and snapshot.last_timestamp == 300.0

    def test_zero_row_observation_is_ignored(self, fitted):
        monitor = fitted.monitor()
        monitor.observe_table(make_table(200, seed=1).take(np.array([], dtype=int)))
        assert monitor.snapshot().total_observations == 0

    def test_observe_partial_with_and_without_matrix(self, fitted):
        streaming = fitted.streaming_validator(chunk_size=128, clock=lambda: 7.0)
        matrix = fitted.preprocessor.transform(make_table(100, seed=6))
        partial = streaming.validate_chunk(matrix)
        monitor = fitted.monitor(window_chunks=4)
        monitor.observe_partial(partial, matrix=matrix)
        snapshot = monitor.snapshot()
        assert snapshot.total_rows == 100 and snapshot.last_timestamp == 7.0
        # Without the matrix only the flag-rate chart advances.
        flags_only = fitted.monitor(window_chunks=4)
        flags_only.observe_partial(partial)
        snapshot = flags_only.snapshot()
        assert snapshot.total_rows == 0
        assert snapshot.flag_rate_ewma != snapshot.flag_rate_center

    def test_observe_matrix_without_preprocessor(self, fitted):
        monitor = DriftMonitor(fitted.monitor_baseline)
        matrix = fitted.preprocessor.transform(make_table(100, seed=2))
        monitor.observe_matrix(matrix, n_flagged=3)
        assert monitor.snapshot().total_rows == 100
        with pytest.raises(ReproError):
            monitor.observe_table(make_table(10, seed=3))

    def test_reset_clears_state_but_keeps_baseline(self, fitted):
        monitor = fitted.monitor(window_chunks=4)
        for i in range(4):
            monitor.observe_table(make_table(200, seed=110 + i, shift=0.5))
        monitor.reset()
        snapshot = monitor.snapshot()
        assert snapshot.total_rows == 0 and snapshot.alerts == []
        assert monitor.baseline is fitted.monitor_baseline

    def test_snapshot_wire_round_trip(self, fitted):
        monitor = fitted.monitor(window_chunks=4, clock=lambda: 42.0)
        for i in range(4):
            monitor.observe_table(make_table(200, seed=120 + i, shift=0.5))
        snapshot = monitor.snapshot()
        payload = json.loads(json.dumps(snapshot.to_dict()))
        clone = MonitorSnapshot.from_dict(payload)
        assert clone.to_dict() == snapshot.to_dict()
        assert clone.drifted_columns == snapshot.drifted_columns
        for alert in clone.alerts:
            assert isinstance(alert, DriftAlert)

    def test_generic_protocol_dispatch(self, fitted):
        from repro.api import from_dict, to_dict

        monitor = fitted.monitor(window_chunks=2, clock=lambda: 1.0)
        monitor.observe_table(make_table(100, seed=5))
        snapshot = monitor.snapshot()
        assert isinstance(from_dict(to_dict(snapshot)), MonitorSnapshot)
        alert = DriftAlert(metric="psi", column="x", value=0.4, threshold=0.25, message="m")
        assert from_dict(to_dict(alert)) == alert


# ---------------------------------------------------------------------------
# pipeline integration
# ---------------------------------------------------------------------------
class TestPipelineIntegration:
    def test_fit_builds_baseline(self, fitted):
        assert fitted.monitor_baseline is not None
        assert fitted.monitor_baseline.flag_rate == pytest.approx(0.05)

    def test_baseline_survives_save_load(self, fitted, tmp_path):
        archive = tmp_path / "weights.npz"
        fitted.save(archive)
        restored = DQuaG().load_weights(archive)
        assert restored.monitor_baseline is not None
        for ours, theirs in zip(
            fitted.monitor_baseline.columns, restored.monitor_baseline.columns
        ):
            np.testing.assert_array_equal(ours.counts, theirs.counts)
        # A restored pipeline monitors drift identically.
        monitor = restored.monitor(window_chunks=4)
        for i in range(4):
            monitor.observe_table(make_table(200, seed=130 + i, shift=0.5))
        assert monitor.snapshot().has_drift

    def test_monitor_without_baseline_raises(self, fitted, tmp_path):
        archive = tmp_path / "weights.npz"
        fitted.save(archive)
        restored = DQuaG().load_weights(archive)
        restored._monitor_baseline = None  # simulate a pre-monitoring archive
        with pytest.raises(ReproError, match="baseline"):
            restored.monitor()
        restored.fit_monitor_baseline(make_table(400, seed=140))
        assert restored.monitor() is not None

    def test_streaming_validator_feeds_monitor(self, fitted):
        monitor = fitted.monitor(window_chunks=16)
        streaming = fitted.streaming_validator(chunk_size=128, monitor=monitor)
        table = make_table(500, seed=150)
        summary = streaming.validate_table(table)
        snapshot = monitor.snapshot()
        assert snapshot.total_rows == 500
        assert snapshot.total_observations == summary.n_chunks

    def test_partial_timestamps_thread_through_fold(self, fitted):
        ticks = iter([10.0, 20.0, 30.0, 40.0])
        streaming = fitted.streaming_validator(chunk_size=128, clock=lambda: next(ticks))
        partials = list(
            streaming.iter_partials(
                fitted.preprocessor.transform_chunks(make_table(500, seed=160), 128)
            )
        )
        assert [p.timestamp for p in partials] == [10.0, 20.0, 30.0, 40.0]
        summary = streaming.fold(iter(partials))
        assert summary.first_timestamp == 10.0 and summary.last_timestamp == 40.0
        # Wire round-trip preserves the stamps exactly.
        clone = type(summary).from_dict(json.loads(json.dumps(summary.to_dict())))
        assert clone.first_timestamp == 10.0 and clone.last_timestamp == 40.0

    def test_unstamped_streams_stay_deterministic(self, fitted):
        streaming = fitted.streaming_validator(chunk_size=128)
        summary = streaming.validate_table(make_table(300, seed=170))
        assert summary.first_timestamp is None and summary.last_timestamp is None
        partial = streaming.validate_chunk(make_table(100, seed=171))
        assert partial.timestamp is None

    def test_codec_revision_1_payload_still_decodes(self, fitted):
        from repro.runtime.streaming import PartialReport, StreamSummary

        streaming = fitted.streaming_validator(chunk_size=128, clock=lambda: 5.0)
        partial = streaming.validate_chunk(make_table(64, seed=180))
        payload = partial.to_dict()
        del payload["timestamp"]  # what a revision-1 producer sends
        assert PartialReport.from_dict(payload).timestamp is None
        summary = streaming.validate_table(make_table(300, seed=181))
        summary_payload = summary.to_dict()
        del summary_payload["first_timestamp"]
        del summary_payload["last_timestamp"]
        decoded = StreamSummary.from_dict(summary_payload)
        assert decoded.first_timestamp is None and decoded.n_rows == 300


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------
class TestServiceMonitoring:
    @pytest.fixture()
    def service(self, fitted):
        with ValidationService(capacity=2, shard_workers=0) as service:
            service.add("demo", fitted)
            yield service

    def test_validate_feeds_monitor(self, service):
        service.validate("demo", make_table(300, seed=200))
        snapshot = service.monitor_snapshot("demo")
        assert snapshot.total_rows == 300 and snapshot.total_observations == 1

    def test_monitor_is_cached_per_generation(self, service, fitted):
        first = service.monitor_for("demo")
        assert service.monitor_for("demo") is first
        service.add("demo", fitted)  # re-add bumps the generation
        second = service.monitor_for("demo")
        assert second is not first  # the stale monitor is not resurrected

    def test_eviction_keeps_the_monitor(self, fitted, tmp_path):
        archive = tmp_path / "demo.npz"
        fitted.save(archive)
        with ValidationService(capacity=1, shard_workers=0) as service:
            service.register("a", archive)
            service.validate("a", make_table(100, seed=210))
            monitor = service.monitor_for("a")
            assert service.evict("a")
            assert service.monitor_for("a") is monitor
            assert monitor.snapshot().total_rows == 100

    def test_monitoring_disabled(self, fitted):
        with ValidationService(capacity=2, shard_workers=0, monitor_window=0) as service:
            service.add("demo", fitted)
            service.validate("demo", make_table(100, seed=220))
            assert service.monitor_for("demo") is None
            assert service.monitor_snapshot("demo") is None
            assert service.monitor_snapshots() == {}

    def test_stream_fallback_path_feeds_monitor(self, service, fitted):
        chunks = [make_table(128, seed=230 + i) for i in range(3)]
        summary = service.validate_stream_sharded("demo", chunks, workers=1)
        snapshot = service.monitor_snapshot("demo")
        assert snapshot.total_rows == summary.n_rows
        assert snapshot.total_observations == summary.n_chunks

    def test_snapshots_cover_only_live_monitors(self, service):
        assert service.monitor_snapshots() == {}
        service.validate("demo", make_table(100, seed=240))
        assert list(service.monitor_snapshots()) == ["demo"]


# ---------------------------------------------------------------------------
# gateway end-to-end (the acceptance criterion)
# ---------------------------------------------------------------------------
class TestGatewayMonitoring:
    @pytest.fixture(scope="class")
    def served(self, fitted):
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", fitted)
        with ValidationGateway(service, port=0) as gateway:
            yield gateway, Client(port=gateway.port)
        service.close()

    def test_drift_visible_through_monitor_and_metrics(self, served, fitted):
        _, client = served
        for i in range(4):
            client.validate("demo", make_table(200, seed=300 + i))
        snapshot = client.monitor("demo")
        assert not snapshot.has_drift  # in-distribution traffic stays quiet

        for i in range(6):
            client.validate("demo", make_table(200, seed=310 + i, shift=0.5))
        snapshot = client.monitor("demo")
        assert snapshot.has_drift
        assert snapshot.alerts, "shifted traffic must raise a DriftAlert"
        assert "x" in snapshot.drifted_columns

        text = client.metrics()
        assert 'repro_monitor_drift_detected{pipeline="demo"} 1' in text
        assert 'repro_monitor_column_drifted{pipeline="demo",column="x"} 1' in text
        assert 'repro_pipeline_validations_total{pipeline="demo"}' in text

    def test_monitor_unknown_pipeline_404(self, served):
        _, client = served
        with pytest.raises(GatewayError, match="404"):
            client.monitor("nope")

    def test_monitor_disabled_404(self, fitted):
        service = ValidationService(capacity=2, shard_workers=0, monitor_window=0)
        service.add("demo", fitted)
        with ValidationGateway(service, port=0) as gateway:
            client = Client(port=gateway.port)
            with pytest.raises(GatewayError, match="no drift monitor"):
                client.monitor("demo")
        service.close()

    def test_streamed_chunks_feed_the_monitor(self, fitted):
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", fitted)
        with ValidationGateway(service, port=0) as gateway:
            client = Client(port=gateway.port)
            chunks = [make_table(128, seed=320 + i) for i in range(3)]
            client.validate_stream("demo", chunks)
            snapshot = client.monitor("demo")
            assert snapshot.total_rows == 3 * 128
        service.close()


class TestPrometheusRendering:
    def test_label_escaping(self, fitted):
        monitor = fitted.monitor(window_chunks=2)
        monitor.observe_table(make_table(100, seed=400))
        from repro.runtime.service import ServiceStats

        stats = ServiceStats(
            registered=1, resident=1, loads=0, evictions=0, hits=1,
            validations=1, repairs=0, rows_validated=100,
            pipelines={'we"ird\n': {"validations": 1, "rows_validated": 100}},
        )
        text = render_prometheus(stats, {'we"ird\n': monitor.snapshot()})
        assert '\\"' in text and "\\n" in text
        # Prometheus text format: every non-comment line is NAME{...} VALUE.
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert " " in line and line.split(" ")[-1] != ""
