"""Tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    error_rate_reduction,
    evaluate_predictions,
    row_detection_metrics,
)


class TestBinaryMetrics:
    def test_perfect_classifier(self):
        labels = [True, True, False, False]
        metrics = evaluate_predictions(labels, labels)
        assert metrics.accuracy == 1.0
        assert metrics.recall == 1.0
        assert metrics.precision == 1.0
        assert metrics.f1 == 1.0

    def test_flag_everything(self):
        # The "too strict" failure mode: accuracy 0.5, recall 1.
        labels = [True] * 10 + [False] * 10
        metrics = evaluate_predictions(labels, [True] * 20)
        assert metrics.accuracy == 0.5
        assert metrics.recall == 1.0
        assert metrics.false_positives == 10

    def test_flag_nothing(self):
        # The "too soft" failure mode: accuracy 0.5, recall 0.
        labels = [True] * 10 + [False] * 10
        metrics = evaluate_predictions(labels, [False] * 20)
        assert metrics.accuracy == 0.5
        assert metrics.recall == 0.0
        assert metrics.precision == 0.0

    def test_counts_sum(self):
        rng = np.random.default_rng(0)
        labels = rng.random(50) > 0.5
        preds = rng.random(50) > 0.5
        metrics = evaluate_predictions(labels, preds)
        assert metrics.n_total == 50

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_predictions([True], [True, False])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictions([], [])


class TestRowDetection:
    def test_perfect_detection(self):
        metrics = row_detection_metrics([1, 3, 5], [1, 3, 5], n_rows=10)
        assert metrics.precision == 1.0 and metrics.recall == 1.0

    def test_partial_detection(self):
        metrics = row_detection_metrics([1, 3, 5, 7], [1, 3], n_rows=10)
        assert metrics.recall == 0.5
        assert metrics.precision == 1.0

    def test_false_positives_hurt_precision(self):
        metrics = row_detection_metrics([1], [1, 2, 3, 4], n_rows=10)
        assert metrics.precision == 0.25

    def test_no_flags(self):
        metrics = row_detection_metrics([1, 2], [], n_rows=10)
        assert metrics.precision == 0.0 and metrics.recall == 0.0 and metrics.f1 == 0.0


class TestErrorRateReduction:
    def test_paper_airbnb_numbers(self):
        reduction = error_rate_reduction(0.1052, 0.0497)
        assert reduction == pytest.approx(0.5276, abs=1e-3)

    def test_zero_before(self):
        assert error_rate_reduction(0.0, 0.0) == 0.0

    def test_full_repair(self):
        assert error_rate_reduction(0.2, 0.0) == 1.0
