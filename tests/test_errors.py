"""Tests for the error-injection framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.errors import (
    CompositeInjector,
    CreditEmploymentBeforeBirthInjector,
    CreditIncomeEducationConflictInjector,
    HotelGroupConflictInjector,
    InjectionReport,
    MissingValueInjector,
    NumericAnomalyInjector,
    QWERTY_NEIGHBORS,
    RowRuleConflictInjector,
    StringTypoInjector,
    qwerty_typo,
    select_rows,
)
from repro.exceptions import SchemaError


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("amount", ColumnKind.NUMERIC),
            ColumnSpec("count", ColumnKind.NUMERIC),
            ColumnSpec("label", ColumnKind.CATEGORICAL),
        ]
    )


@pytest.fixture
def table(schema) -> Table:
    rng = np.random.default_rng(0)
    n = 500
    return Table(
        schema,
        {
            "amount": rng.normal(100.0, 10.0, n),
            "count": rng.integers(0, 50, n).astype(float),
            "label": rng.choice(["alpha", "beta", "gamma"], n),
        },
    )


class TestQwerty:
    def test_all_letters_have_neighbors(self):
        for letter in "abcdefghijklmnopqrstuvwxyz":
            assert QWERTY_NEIGHBORS[letter], letter

    def test_neighbors_are_adjacent_keys(self):
        assert "w" in QWERTY_NEIGHBORS["q"]
        assert "q" not in QWERTY_NEIGHBORS["p"]

    def test_typo_changes_string(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert qwerty_typo("hello", rng) != "hello"

    def test_typo_preserves_length_and_case(self):
        rng = np.random.default_rng(2)
        out = qwerty_typo("Hello", rng)
        assert len(out) == 5
        # a typo on the capital stays capital
        for _ in range(50):
            out = qwerty_typo("A", rng)
            assert out.isupper()

    def test_typo_on_unmappable_string(self):
        rng = np.random.default_rng(3)
        assert qwerty_typo("1234", rng) == "1234q"


class TestInjectionReport:
    def test_row_mask_and_counts(self):
        mask = np.zeros((4, 3), dtype=bool)
        mask[1, 0] = mask[1, 2] = mask[3, 1] = True
        report = InjectionReport(mask, "x")
        assert report.n_dirty_rows == 2
        assert report.n_dirty_cells == 3
        assert report.error_rate() == 0.5

    def test_merge(self):
        a = InjectionReport(np.eye(3, dtype=bool), "a")
        b = InjectionReport(np.fliplr(np.eye(3, dtype=bool)), "b")
        merged = a.merge(b)
        assert merged.n_dirty_cells == 5  # overlap in the center
        assert "a" in merged.description and "b" in merged.description

    def test_merge_shape_mismatch(self):
        a = InjectionReport(np.zeros((2, 2), dtype=bool))
        b = InjectionReport(np.zeros((3, 2), dtype=bool))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            InjectionReport(np.zeros(4, dtype=bool))


class TestSelectRows:
    def test_count_matches_fraction(self):
        rows = select_rows(1000, 0.2, np.random.default_rng(0))
        assert rows.size == 200
        assert len(set(rows.tolist())) == 200  # distinct

    def test_at_least_one(self):
        assert select_rows(5, 0.01, np.random.default_rng(0)).size == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            select_rows(10, 0.0, np.random.default_rng(0))


class TestMissingValueInjector:
    def test_injects_requested_fraction(self, table):
        injector = MissingValueInjector(["amount", "label"], fraction=0.2)
        dirty, report = injector.inject(table, rng=0)
        assert np.isnan(dirty["amount"]).mean() == pytest.approx(0.2, abs=0.01)
        assert np.mean([v is None for v in dirty["label"]]) == pytest.approx(0.2, abs=0.01)
        assert report.n_dirty_cells == 200

    def test_original_untouched(self, table):
        MissingValueInjector(["amount"]).inject(table, rng=0)
        assert not np.isnan(table["amount"]).any()

    def test_mask_matches_cells(self, table):
        dirty, report = MissingValueInjector(["amount"]).inject(table, rng=0)
        np.testing.assert_array_equal(report.cell_mask[:, 0], np.isnan(dirty["amount"]))

    def test_unknown_column(self, table):
        with pytest.raises(SchemaError):
            MissingValueInjector(["zzz"]).inject(table, rng=0)

    def test_deterministic(self, table):
        a, _ = MissingValueInjector(["amount"]).inject(table, rng=5)
        b, _ = MissingValueInjector(["amount"]).inject(table, rng=5)
        np.testing.assert_array_equal(np.isnan(a["amount"]), np.isnan(b["amount"]))

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            MissingValueInjector([])


class TestNumericAnomalyInjector:
    def test_values_leave_clean_range(self, table):
        injector = NumericAnomalyInjector(["amount"], fraction=0.2)
        dirty, report = injector.inject(table, rng=0)
        corrupted = dirty["amount"][report.cell_mask[:, 0]]
        low, high = table["amount"].min(), table["amount"].max()
        assert ((corrupted < low) | (corrupted > high)).all()

    def test_rejects_categorical_target(self, table):
        with pytest.raises(SchemaError):
            NumericAnomalyInjector(["label"]).inject(table, rng=0)

    def test_scaling_and_shift_both_used(self, table):
        injector = NumericAnomalyInjector(["amount"], fraction=0.5, scale_factor=1000.0)
        dirty, report = injector.inject(table, rng=0)
        corrupted = dirty["amount"][report.cell_mask[:, 0]]
        assert (corrupted > 10_000).any()  # scaled
        assert (np.abs(corrupted) < 10_000).any()  # shifted


class TestStringTypoInjector:
    def test_introduces_unseen_categories(self, table):
        injector = StringTypoInjector(["label"], fraction=0.2)
        dirty, report = injector.inject(table, rng=0)
        clean_domain = {"alpha", "beta", "gamma"}
        corrupted = dirty["label"][report.cell_mask[:, 2]]
        assert all(v not in clean_domain for v in corrupted)

    def test_rejects_numeric_target(self, table):
        with pytest.raises(SchemaError):
            StringTypoInjector(["amount"]).inject(table, rng=0)


class TestRowRuleConflictInjector:
    def test_transform_applied_to_fraction(self, table):
        injector = RowRuleConflictInjector(
            transform=lambda row, rng: {"count": -1.0},
            touched_columns=["count"],
            fraction=0.1,
        )
        dirty, report = injector.inject(table, rng=0)
        assert (dirty["count"] == -1.0).sum() == report.n_dirty_rows == 50

    def test_eligibility_filter(self, table):
        injector = RowRuleConflictInjector(
            transform=lambda row, rng: {"count": -1.0},
            touched_columns=["count"],
            fraction=0.9,
            eligible=lambda row: row["label"] == "alpha",
        )
        dirty, report = injector.inject(table, rng=0)
        flagged = report.row_mask
        assert all(table["label"][i] == "alpha" for i in np.flatnonzero(flagged))

    def test_undeclared_column_rejected(self, table):
        injector = RowRuleConflictInjector(
            transform=lambda row, rng: {"amount": 0.0},
            touched_columns=["count"],
        )
        with pytest.raises(ValueError):
            injector.inject(table, rng=0)

    def test_no_eligible_rows_is_noop(self, table):
        injector = RowRuleConflictInjector(
            transform=lambda row, rng: {"count": -1.0},
            touched_columns=["count"],
            eligible=lambda row: False,
        )
        dirty, report = injector.inject(table, rng=0)
        assert report.n_dirty_rows == 0
        np.testing.assert_array_equal(dirty["count"], table["count"])


class TestDomainConflictInjectors:
    def _credit_table(self) -> Table:
        from repro.datasets import CreditCardGenerator

        return CreditCardGenerator().generate_clean(400, rng=0)

    def _hotel_table(self) -> Table:
        from repro.datasets import HotelBookingGenerator

        return HotelBookingGenerator().generate_clean(400, rng=0)

    def test_employment_before_birth(self):
        clean = self._credit_table()
        dirty, report = CreditEmploymentBeforeBirthInjector(fraction=0.2).inject(clean, rng=0)
        flagged = report.row_mask
        employed = np.abs(dirty["DAYS_EMPLOYED"][flagged])
        lifetime = np.abs(dirty["DAYS_BIRTH"][flagged])
        assert (employed > lifetime).all()
        # Clean rows keep the invariant.
        clean_ok = np.abs(clean["DAYS_EMPLOYED"]) < np.abs(clean["DAYS_BIRTH"])
        assert clean_ok.all()

    def test_income_education_conflict(self):
        clean = self._credit_table()
        dirty, report = CreditIncomeEducationConflictInjector(fraction=0.2).inject(clean, rng=0)
        flagged = report.row_mask
        assert set(dirty["NAME_EDUCATION_TYPE"][flagged]) <= set(
            CreditIncomeEducationConflictInjector.ADVANCED_EDUCATION
        )
        assert (dirty["AMT_INCOME_TOTAL"][flagged] <= 30_000.0).all()
        # Forced income stays inside the clean marginal range (that's the point).
        assert dirty["AMT_INCOME_TOTAL"][flagged].min() >= clean["AMT_INCOME_TOTAL"].min() * 0.5

    def test_hotel_group_conflict(self):
        clean = self._hotel_table()
        dirty, report = HotelGroupConflictInjector(fraction=0.2).inject(clean, rng=0)
        flagged = report.row_mask
        assert (dirty["adults"][flagged] == 0).all()
        assert (dirty["babies"][flagged] > 0).all()
        assert set(dirty["customer_type"][flagged]) == {"Group"}
        # The clean table never contains that combination.
        clean_conflict = (
            (clean["adults"] == 0) & (clean["babies"] > 0)
        )
        assert not clean_conflict.any()


class TestCompositeInjector:
    def test_reports_merged(self, table):
        composite = CompositeInjector(
            [
                MissingValueInjector(["amount"], fraction=0.1),
                StringTypoInjector(["label"], fraction=0.1),
            ]
        )
        dirty, report = composite.inject(table, rng=0)
        assert report.cell_mask[:, 0].sum() == 50
        assert report.cell_mask[:, 2].sum() == 50

    def test_children_independent_of_order(self, table):
        # Removing the second child must not change what the first does.
        solo, _ = MissingValueInjector(["amount"], fraction=0.1).inject(table, rng=7)
        both, _ = CompositeInjector(
            [MissingValueInjector(["amount"], fraction=0.1), StringTypoInjector(["label"], fraction=0.1)]
        ).inject(table, rng=7)
        # Note: composite derives child RNGs, so patterns differ from solo use;
        # here we only require determinism of the composite itself.
        again, _ = CompositeInjector(
            [MissingValueInjector(["amount"], fraction=0.1), StringTypoInjector(["label"], fraction=0.1)]
        ).inject(table, rng=7)
        np.testing.assert_array_equal(np.isnan(both["amount"]), np.isnan(again["amount"]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeInjector([])
