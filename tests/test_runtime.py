"""Tests for the compiled inference runtime (engine, streaming, service)
and the persistence/config satellites that ship with it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema, read_csv_chunks, write_csv
from repro.data.preprocess import TablePreprocessor
from repro.errors import NumericAnomalyInjector
from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    ReproError,
    SerializationError,
)
from repro.nn.kernels import Workspace
from repro.nn.serialization import load_state, save_state
from repro.runtime import InferenceEngine, PartialReport, StreamingValidator, ValidationService
from repro.runtime.streaming import StreamSummary


def make_table(n: int, seed: int) -> Table:
    """Correlated numerics plus a category derived from the driver."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def fit_small(architecture: str = "gat_gin", **overrides) -> DQuaG:
    config = DQuaGConfig(
        architecture=architecture, hidden_dim=16, epochs=4, batch_size=64, **overrides
    )
    return DQuaG(config).fit(make_table(400, seed=0), rng=0)


@pytest.fixture(scope="module")
def fitted() -> tuple[DQuaG, Table]:
    train = make_table(600, seed=0)
    config = DQuaGConfig(hidden_dim=24, epochs=20, batch_size=32)
    pipeline = DQuaG(config).fit(train, rng=0, calibration_table=make_table(700, seed=1))
    return pipeline, make_table(1200, seed=2)


# ---------------------------------------------------------------------------
# engine-vs-autograd parity (satellite: all four architectures, 1e-10)
# ---------------------------------------------------------------------------
class TestEngineParity:
    @pytest.mark.parametrize(
        "architecture", ["gat_gin", "gcn", "gcn_gat", "gcn_gin", "graphsage", "graph2vec"]
    )
    def test_errors_and_repairs_match_autograd(self, architecture):
        pipeline = fit_small(architecture)
        engine = pipeline.engine
        assert engine is not None
        holdout = make_table(300, seed=3)
        matrix = pipeline.preprocessor.transform(holdout)
        np.testing.assert_allclose(
            engine.reconstruction_errors(matrix),
            pipeline.model.reconstruction_errors(matrix),
            rtol=0.0,
            atol=1e-10,
        )
        np.testing.assert_allclose(
            engine.repair_values(matrix),
            pipeline.model.repair_values(matrix),
            rtol=0.0,
            atol=1e-10,
        )

    def test_chunk_size_invariance_is_exact(self, fitted):
        pipeline, holdout = fitted
        matrix = pipeline.preprocessor.transform(holdout)
        small = InferenceEngine(pipeline.model, chunk_size=77)
        large = InferenceEngine(pipeline.model, chunk_size=4096)
        np.testing.assert_array_equal(
            small.reconstruction_errors(matrix), large.reconstruction_errors(matrix)
        )

    def test_forward_shares_encoder_pass(self, fitted):
        pipeline, holdout = fitted
        matrix = pipeline.preprocessor.transform(holdout)
        recon, repair = pipeline.engine.forward(matrix)
        np.testing.assert_array_equal((recon - matrix) ** 2, pipeline.engine.reconstruction_errors(matrix))
        np.testing.assert_array_equal(repair, pipeline.engine.repair_values(matrix))

    def test_engine_validate_matches_pipeline(self, fitted):
        pipeline, holdout = fitted
        via_engine = pipeline.engine.validate(holdout)
        via_pipeline = pipeline.validate(holdout)
        np.testing.assert_array_equal(via_engine.row_flags, via_pipeline.row_flags)
        np.testing.assert_array_equal(via_engine.cell_flags, via_pipeline.cell_flags)
        np.testing.assert_array_equal(via_engine.sample_errors, via_pipeline.sample_errors)
        assert via_engine.is_problematic == via_pipeline.is_problematic

    def test_repair_routes_through_engine(self, fitted):
        pipeline, holdout = fitted
        assert pipeline._repair_engine.engine is pipeline.engine
        dirty, _ = NumericAnomalyInjector(["y"], fraction=0.2).inject(holdout, rng=5)
        repaired, summary = pipeline.repair(dirty)
        assert summary.n_cells_repaired > 0

    def test_engine_without_context_rejects_validate(self, fitted):
        pipeline, holdout = fitted
        bare = InferenceEngine(pipeline.model)
        with pytest.raises(NotFittedError):
            bare.validate(holdout)

    def test_bad_matrix_shape_rejected(self, fitted):
        pipeline, _ = fitted
        with pytest.raises(ValueError):
            pipeline.engine.reconstruction_errors(np.zeros((10, 99)))

    def test_workspace_buffers_are_reused(self):
        ws = Workspace()
        a = ws.get("k", (4, 3))
        b = ws.get("k", (2, 3))  # smaller request: view of same capacity
        assert b.base is a.base or b.base is a
        c = ws.get("k", (8, 3))  # larger request: regrown
        assert c.shape == (8, 3)


# ---------------------------------------------------------------------------
# streaming (satellite: chunked == one-shot)
# ---------------------------------------------------------------------------
class TestStreaming:
    def test_chunked_report_identical_to_one_shot(self, fitted):
        pipeline, holdout = fitted
        one_shot = pipeline.validate(holdout)
        streamed = pipeline.streaming_validator(chunk_size=333, keep_cell_errors=True).validate_table(holdout)
        np.testing.assert_array_equal(streamed.row_flags, one_shot.row_flags)
        np.testing.assert_array_equal(streamed.cell_flags, one_shot.cell_flags)
        np.testing.assert_array_equal(streamed.sample_errors, one_shot.sample_errors)
        np.testing.assert_array_equal(streamed.cell_errors, one_shot.cell_errors)
        assert streamed.threshold == one_shot.threshold
        assert streamed.flagged_fraction == one_shot.flagged_fraction
        assert streamed.is_problematic == one_shot.is_problematic
        assert streamed.feature_names == one_shot.feature_names

    def test_summary_mode_matches_flags_without_dense_errors(self, fitted):
        pipeline, holdout = fitted
        dirty, _ = NumericAnomalyInjector(["y"], fraction=0.3).inject(holdout, rng=9)
        one_shot = pipeline.validate(dirty)
        summary = pipeline.streaming_validator(chunk_size=250).validate_table(dirty)
        assert isinstance(summary, StreamSummary)
        assert summary.n_rows == dirty.n_rows
        assert summary.n_chunks == 5
        assert summary.n_flagged == one_shot.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, one_shot.flagged_rows)
        assert summary.is_problematic == one_shot.is_problematic
        assert summary.flagged_cells_by_column
        assert sum(summary.flagged_cells_by_column.values()) == int(one_shot.cell_flags.sum())
        assert "rows flagged" in summary.summary()

    def test_stream_from_csv_chunks(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "holdout.csv"
        write_csv(holdout, path)
        chunks = read_csv_chunks(path, holdout.schema, chunk_size=400)
        summary = pipeline.streaming_validator().validate_stream(chunks)
        one_shot = pipeline.validate(holdout)
        assert summary.n_rows == holdout.n_rows
        assert summary.n_flagged == one_shot.n_flagged

    def test_partial_reports_carry_global_offsets(self, fitted):
        pipeline, holdout = fitted
        validator = pipeline.streaming_validator(chunk_size=500)
        partials = list(
            validator.iter_partials(pipeline.preprocessor.transform_chunks(holdout, 500))
        )
        assert [p.offset for p in partials] == [0, 500, 1000]
        assert sum(p.n_rows for p in partials) == holdout.n_rows
        flagged = np.concatenate([p.flagged_rows for p in partials])
        np.testing.assert_array_equal(flagged, pipeline.validate(holdout).flagged_rows)

    def test_merge_requires_dense_errors(self, fitted):
        pipeline, holdout = fitted
        validator = pipeline.streaming_validator(chunk_size=600)  # no dense retention
        partials = list(
            validator.iter_partials(pipeline.preprocessor.transform_chunks(holdout, 600))
        )
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            PartialReport.merge(partials, threshold=0.1, rule=validator.validator.rule)

    def test_empty_stream_rejected(self, fitted):
        pipeline, _ = fitted
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            pipeline.streaming_validator().validate_stream([])

    def test_empty_stream_message_identical_in_both_modes(self, fitted):
        # The dense-merge path and the bounded-memory fold used to raise
        # different messages ("cannot merge zero partial reports" vs
        # "cannot validate an empty stream"); both now raise the latter.
        pipeline, _ = fitted
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="cannot validate an empty stream"):
            pipeline.streaming_validator(keep_cell_errors=True).validate_stream([])
        with pytest.raises(ValidationError, match="cannot validate an empty stream"):
            pipeline.streaming_validator(keep_cell_errors=False).validate_stream([])

    def test_raw_matrix_width_mismatch_raises_schema_error(self, fitted):
        # A matrix whose width disagrees with the trained schema used to
        # surface as an IndexError deep inside fold's column lookup.
        pipeline, _ = fitted
        from repro.exceptions import SchemaError

        validator = pipeline.streaming_validator()
        with pytest.raises(SchemaError, match="expects"):
            validator.validate_chunk(np.zeros((10, 99)))
        with pytest.raises(SchemaError):
            validator.validate_chunk(np.zeros(30))  # 1-D is not a row chunk
        with pytest.raises(SchemaError):
            validator.validate_stream(iter([np.zeros((10, 99))]))

    def test_transform_chunks_concatenate_to_full_transform(self, fitted):
        pipeline, holdout = fitted
        full = pipeline.preprocessor.transform(holdout)
        chunked = np.concatenate(
            list(pipeline.preprocessor.transform_chunks(holdout, chunk_size=123)), axis=0
        )
        np.testing.assert_array_equal(full, chunked)


# ---------------------------------------------------------------------------
# serving layer
# ---------------------------------------------------------------------------
class TestValidationService:
    def test_load_validate_and_lru_evict(self, fitted, tmp_path):
        pipeline, holdout = fitted
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        pipeline.save(a)
        pipeline.save(b)
        with ValidationService(capacity=1) as service:
            service.register("a", a)
            service.register("b", b)
            report = service.validate("a", holdout)
            np.testing.assert_array_equal(report.row_flags, pipeline.validate(holdout).row_flags)
            assert service.resident == ["a"]
            service.validate("b", holdout)
            assert service.resident == ["b"]  # LRU evicted "a"
            stats = service.stats()
            assert stats["loads"] == 2 and stats["evictions"] == 1
            # Reload works straight from the archive, no clean table.
            service.validate("a", holdout)
            assert service.n_loads == 3

    def test_concurrent_dispatch_matches_serial(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        batches = [make_table(200, seed=s) for s in range(4)]
        with ValidationService(capacity=2, max_workers=4) as service:
            service.register("p", path)
            reports = service.validate_many(("p", batch) for batch in batches)
            for batch, report in zip(batches, reports):
                expected = pipeline.validate(batch)
                np.testing.assert_array_equal(report.row_flags, expected.row_flags)
                np.testing.assert_array_equal(report.sample_errors, expected.sample_errors)

    def test_directly_added_pipelines_are_pinned(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        with ValidationService(capacity=1) as service:
            service.add("resident", pipeline)
            service.register("archived", path)
            service.validate("archived", holdout)
            assert "resident" in service.resident  # pinned entries survive pressure
            service.validate("resident", holdout)

    def test_evict_is_noop_for_pinned_entries(self, fitted):
        pipeline, _ = fitted
        with ValidationService(capacity=1) as service:
            service.add("pinned", pipeline)
            assert service.evict("pinned") is False
            assert "pinned" in service.resident
            assert service.evict("absent") is False

    def test_pinned_entries_do_not_consume_lru_capacity(self, fitted, tmp_path):
        # Two pinned pipelines + capacity 1: an archive-backed pipeline
        # must still get its slot instead of being crowded out.
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        with ValidationService(capacity=1) as service:
            service.add("pin_a", pipeline)
            service.add("pin_b", pipeline)
            service.register("archived", path)
            service.validate("archived", holdout)
            assert set(service.resident) == {"pin_a", "pin_b", "archived"}
            assert service.n_evictions == 0
            # Evicting the archive-backed entry still works.
            assert service.evict("archived") is True
            assert service.resident == ["pin_a", "pin_b"]

    def test_repair_dispatch(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        dirty, _ = NumericAnomalyInjector(["y"], fraction=0.25).inject(holdout, rng=11)
        with ValidationService() as service:
            service.register("p", path)
            repaired, summary = service.repair("p", dirty, iterations=2)
            local_repaired, local_summary = service.get("p").repair(dirty, iterations=2)
            assert summary.n_cells_repaired == local_summary.n_cells_repaired
            np.testing.assert_array_equal(repaired["y"], local_repaired["y"])

    def test_submit_many_returns_futures_in_order(self, fitted):
        pipeline, _ = fitted
        batches = [make_table(100, seed=s) for s in range(3)]
        with ValidationService(max_workers=2) as service:
            service.add("p", pipeline)
            futures = service.submit_many(("p", batch) for batch in batches)
            assert len(futures) == 3
            for batch, future in zip(batches, futures):
                expected = pipeline.validate(batch)
                np.testing.assert_array_equal(future.result().row_flags, expected.row_flags)

    def test_per_pipeline_stats_and_snapshot(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        with ValidationService() as service:
            service.register("archived", path)
            service.add("resident", pipeline)
            service.validate("archived", holdout)
            service.validate("resident", holdout)
            service.repair("resident", holdout)
            detail = service.pipeline_stats()
            assert detail["archived"]["loads"] == 1
            assert detail["archived"]["validations"] == 1
            assert detail["archived"]["rows_validated"] == holdout.n_rows
            assert detail["archived"]["source"] == str(path)
            assert detail["resident"]["pinned"] and detail["resident"]["repairs"] == 1
            snapshot = service.stats_snapshot()
            assert snapshot.validations == 2 and snapshot.repairs == 1
            assert snapshot.registered == 2
            # The snapshot is wire-encodable via the repro.api protocol.
            import json

            from repro.runtime.service import ServiceStats

            clone = ServiceStats.from_dict(json.loads(json.dumps(snapshot.to_dict())))
            assert clone == snapshot

    def test_counters_survive_eviction(self, fitted, tmp_path):
        pipeline, holdout = fitted
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        pipeline.save(a)
        pipeline.save(b)
        with ValidationService(capacity=1) as service:
            service.register("a", a)
            service.register("b", b)
            service.validate("a", holdout)
            service.validate("b", holdout)  # evicts "a"
            assert service.pipeline_stats()["a"]["validations"] == 1
            assert service.stats()["rows_validated"] == 2 * holdout.n_rows

    def test_unknown_pipeline_rejected(self):
        with ValidationService() as service:
            with pytest.raises(ReproError):
                service.get("nope")

    def test_reregister_resident_name_under_concurrent_get(self, fitted, tmp_path):
        # Hammer get() on a name while it is re-register()ed in between:
        # every get must return a working pipeline (old or new — never a
        # torn state), and the final load must come from the new archive.
        import threading

        pipeline, holdout = fitted
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        pipeline.save(a)
        pipeline.save(b)
        with ValidationService(capacity=2) as service:
            service.register("p", a)
            errors: list[Exception] = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    try:
                        service.get("p").validate(holdout.head(20))
                    except Exception as exc:  # pragma: no cover - failure path
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for source in (b, a, b):
                service.register("p", source)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            # The re-registration dropped any stale resident copy; the
            # next get() loads from the latest archive.
            service.get("p")
            with service._lock:
                assert service._entries["p"].source == b
            assert service.pipeline_stats()["p"]["loads"] >= 1

    def test_eviction_order_with_mixed_pinned_and_unpinned(self, fitted, tmp_path):
        # Pinned entries are invisible to the LRU: with capacity 2 and an
        # interleaved pinned entry, the eviction victim must be the
        # least-recently-used *unpinned* entry, in usage (not insertion)
        # order.
        pipeline, holdout = fitted
        paths = {}
        for name in ("u1", "u2", "u3"):
            paths[name] = tmp_path / f"{name}.npz"
            pipeline.save(paths[name])
        with ValidationService(capacity=2) as service:
            service.add("pin", pipeline)
            for name in ("u1", "u2"):
                service.register(name, paths[name])
                service.validate(name, holdout.head(10))
            service.validate("u1", holdout.head(10))  # u1 becomes MRU
            service.register("u3", paths["u3"])
            service.validate("u3", holdout.head(10))  # over capacity: evict u2
            assert "pin" in service.resident
            assert set(service.resident) == {"pin", "u1", "u3"}
            assert service.n_evictions == 1

    def test_lifetime_counters_survive_eviction_and_reregistration(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        with ValidationService(capacity=1) as service:
            service.register("p", path)
            service.validate("p", holdout.head(30))
            assert service.evict("p") is True
            service.register("p", path)  # fresh registration of the same name
            service.validate("p", holdout.head(30))
            stats = service.pipeline_stats()["p"]
            assert stats["validations"] == 2
            assert stats["rows_validated"] == 60
            assert stats["loads"] == 2  # one load per residency

    def test_unknown_archive_rejected(self, tmp_path):
        with ValidationService() as service:
            with pytest.raises(ReproError):
                service.register("x", tmp_path / "missing.npz")


# ---------------------------------------------------------------------------
# persistence satellites
# ---------------------------------------------------------------------------
class TestPersistence:
    def test_future_categories_survive_reload(self, tmp_path):
        train = make_table(400, seed=0)
        config = DQuaGConfig(hidden_dim=16, epochs=4, batch_size=64)
        pipeline = DQuaG(config).fit(
            train, rng=0, future_categories={"c": ["mid", "unknown_band"]}
        )
        path = tmp_path / "p.npz"
        pipeline.save(path)

        clone = DQuaG().load_weights(path)  # no clean table needed
        assert (
            clone.preprocessor.label_encoder("c").classes_
            == pipeline.preprocessor.label_encoder("c").classes_
        )
        assert "mid" in clone.preprocessor.label_encoder("c").classes_
        assert clone._future_categories == {"c": ["mid", "unknown_band"]}

        # A table exercising the anticipated category encodes identically.
        probe = make_table(300, seed=7)
        half = probe.n_rows // 2
        category = probe.column("c").copy()
        category[:half] = "mid"
        probe = probe.with_column("c", category)
        original = pipeline.validate(probe)
        restored = clone.validate(probe)
        np.testing.assert_array_equal(original.row_flags, restored.row_flags)
        np.testing.assert_array_equal(original.sample_errors, restored.sample_errors)

    def test_reload_does_not_depend_on_clean_table_statistics(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "p.npz"
        pipeline.save(path)
        clone = DQuaG().load_weights(path)
        np.testing.assert_array_equal(
            clone.preprocessor.transform(holdout), pipeline.preprocessor.transform(holdout)
        )
        # Repair centers ride along in the archive too.
        np.testing.assert_array_equal(
            clone._repair_engine.clean_column_centers,
            pipeline._repair_engine.clean_column_centers,
        )

    def test_preprocessor_metadata_roundtrip(self, fitted):
        pipeline, holdout = fitted
        payload = pipeline.preprocessor.to_metadata()
        restored = TablePreprocessor.from_metadata(payload)
        np.testing.assert_array_equal(
            restored.transform(holdout), pipeline.preprocessor.transform(holdout)
        )

    def test_pre_runtime_archive_rejected(self, tmp_path):
        # Simulate a v1 (seed-era) archive: valid payload, no format_version.
        import json

        path = tmp_path / "old.npz"
        save_state({"w": np.zeros(3)}, path, metadata={"config": {}})
        data = dict(np.load(path, allow_pickle=False))
        manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        del manifest["format_version"]
        data["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(SerializationError, match="archive format"):
            load_state(path)
        with pytest.raises(SerializationError):
            DQuaG().load_weights(path)

    def test_future_format_rejected(self, tmp_path):
        import json

        path = tmp_path / "new.npz"
        save_state({"w": np.zeros(3)}, path)
        data = dict(np.load(path, allow_pickle=False))
        manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        manifest["format_version"] = 99
        data["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(SerializationError, match="newer"):
            load_state(path)


# ---------------------------------------------------------------------------
# config satellite
# ---------------------------------------------------------------------------
class TestFeatureThresholdPercentileConfig:
    def test_roundtrip_through_dict(self):
        config = DQuaGConfig(feature_threshold_percentile=97.5)
        clone = DQuaGConfig.from_dict(config.to_dict())
        assert clone.feature_threshold_percentile == 97.5
        assert clone == config

    def test_legacy_payload_defaults(self):
        payload = DQuaGConfig().to_dict()
        del payload["feature_threshold_percentile"]
        assert DQuaGConfig.from_dict(payload).feature_threshold_percentile == 99.5

    @pytest.mark.parametrize("bad", [0.0, 100.0, -1.0, 120.0])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            DQuaGConfig(feature_threshold_percentile=bad)

    def test_percentile_feeds_feature_thresholds(self):
        # A lower percentile yields lower (or equal) per-feature thresholds.
        strict = fit_small(feature_threshold_percentile=80.0)
        lax = fit_small(feature_threshold_percentile=99.9)
        assert (
            strict._validator.feature_thresholds <= lax._validator.feature_thresholds + 1e-12
        ).all()
