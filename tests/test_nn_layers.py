"""Tests for nn layers, modules, optimizers, and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    SGD,
    Sequential,
    Tensor,
    functional as F,
    load_into_module,
    save_module,
)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7, rng=0)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 7)

    def test_batched_3d_input(self):
        layer = Linear(4, 7, rng=0)
        out = layer(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_no_bias(self):
        layer = Linear(3, 3, bias=False, rng=0)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 3))))
        np.testing.assert_allclose(out.numpy(), 0.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=0)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])

    def test_deterministic_init(self):
        a = Linear(5, 5, rng=42)
        b = Linear(5, 5, rng=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP([4, 8, 2], rng=0)
        assert mlp(Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_final_activation(self):
        mlp = MLP([2, 2], final_activation="sigmoid", rng=0)
        out = mlp(Tensor(np.array([[100.0, -100.0]])))
        assert (out.numpy() >= 0).all() and (out.numpy() <= 1).all()

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            MLP([2, 2], activation="bogus")

    def test_parameter_count(self):
        mlp = MLP([4, 8, 2], rng=0)
        assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)


class TestDropout:
    def test_train_mode_zeroes_some(self):
        drop = Dropout(0.5, rng=0)
        out = drop(Tensor(np.ones((100, 100))))
        zero_fraction = float((out.numpy() == 0).mean())
        assert 0.4 < zero_fraction < 0.6

    def test_eval_mode_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = np.ones((10, 10))
        np.testing.assert_array_equal(drop(Tensor(x)).numpy(), x)

    def test_scaling_preserves_expectation(self):
        drop = Dropout(0.3, rng=0)
        out = drop(Tensor(np.ones((200, 200))))
        assert abs(out.numpy().mean() - 1.0) < 0.05

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        layer = LayerNorm(6)
        x = np.random.default_rng(0).normal(3.0, 5.0, size=(4, 6))
        out = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients_flow(self):
        layer = LayerNorm(4)
        out = layer(Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True))
        (out * out).sum().backward()
        assert layer.gamma.grad is not None


class TestModuleMechanics:
    def test_nested_parameter_discovery(self):
        seq = Sequential(Linear(2, 3, rng=0), Linear(3, 1, rng=0))
        names = [name for name, _ in seq.named_parameters()]
        assert names == ["layer0.weight", "layer0.bias", "layer1.weight", "layer1.bias"]

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5), Linear(2, 2, rng=0))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = MLP([3, 5, 2], rng=0)
        b = MLP([3, 5, 2], rng=99)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        np.testing.assert_array_equal(a(x).numpy(), b(x).numpy())

    def test_state_dict_strictness(self):
        a = MLP([3, 5, 2], rng=0)
        state = a.state_dict()
        state.pop("linear0.bias")
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_check(self):
        a = Linear(2, 2, rng=0)
        state = a.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            a.load_state_dict(state)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        model = MLP([4, 6, 3], rng=7)
        path = tmp_path / "model.npz"
        save_module(model, path, metadata={"epochs": 12})
        clone = MLP([4, 6, 3], rng=0)
        metadata = load_into_module(clone, path)
        assert metadata == {"epochs": 12}
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4)))
        np.testing.assert_array_equal(model(x).numpy(), clone(x).numpy())

    def test_load_missing_file(self, tmp_path):
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            load_into_module(Linear(2, 2, rng=0), tmp_path / "nope.npz")

    def test_load_mismatched_module(self, tmp_path):
        from repro.exceptions import SerializationError

        model = Linear(2, 2, rng=0)
        path = tmp_path / "m.npz"
        save_module(model, path)
        with pytest.raises(SerializationError):
            load_into_module(Linear(3, 3, rng=0), path)


class TestOptimizers:
    def _quadratic_loss(self, param: Parameter) -> Tensor:
        target = Tensor(np.array([1.0, -2.0, 3.0]))
        diff = param - target
        return (diff * diff).sum()

    def test_sgd_converges(self):
        param = Parameter(np.zeros(3))
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            self._quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_sgd_momentum_converges_faster(self):
        def run(momentum):
            param = Parameter(np.zeros(3))
            opt = SGD([param], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                loss = self._quadratic_loss(param)
                loss.backward()
                opt.step()
            return float(self._quadratic_loss(param).numpy())

        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            self._quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        def run(weight_decay):
            param = Parameter(np.zeros(3))
            opt = Adam([param], lr=0.05, weight_decay=weight_decay)
            for _ in range(400):
                opt.zero_grad()
                self._quadratic_loss(param).backward()
                opt.step()
            return np.linalg.norm(param.data)

        assert run(1.0) < run(0.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_skips_parameters_without_grad(self):
        used = Parameter(np.zeros(2))
        unused = Parameter(np.ones(2))
        opt = Adam([used, unused], lr=0.1)
        opt.zero_grad()
        (used * used).sum().backward()
        opt.step()
        np.testing.assert_array_equal(unused.data, [1.0, 1.0])


class TestFunctional:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(loss.numpy(), 2.5)

    def test_weighted_mse_weights_apply(self):
        pred = Tensor(np.array([[1.0], [1.0]]), requires_grad=True)
        target = np.zeros((2, 1))
        loss_eq = F.weighted_mse_loss(pred, target, np.array([1.0, 1.0]))
        loss_skew = F.weighted_mse_loss(pred, target, np.array([2.0, 0.0]))
        np.testing.assert_allclose(loss_eq.numpy(), 1.0)
        np.testing.assert_allclose(loss_skew.numpy(), 1.0)
        # Gradient flows only into the weighted sample.
        loss_skew.backward()
        np.testing.assert_allclose(pred.grad[1], 0.0)

    def test_weighted_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.weighted_mse_loss(Tensor(np.zeros((2, 2))), np.zeros((2, 2)), np.zeros(3))

    def test_masked_softmax_respects_mask(self):
        scores = Tensor(np.zeros((1, 4)))
        mask = np.array([[True, True, False, False]])
        out = F.masked_softmax(scores, mask).numpy()
        np.testing.assert_allclose(out[0, :2], 0.5, atol=1e-6)
        np.testing.assert_allclose(out[0, 2:], 0.0, atol=1e-6)

    def test_l2_regularization(self):
        params = [Parameter(np.array([3.0, 4.0]))]
        np.testing.assert_allclose(F.l2_regularization(params, 0.1).numpy(), 2.5)

    def test_dropout_eval_passthrough(self):
        x = Tensor(np.ones((5, 5)))
        out = F.dropout(x, 0.9, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())
