"""Tests for shared utilities: RNG management, logging, timing."""

from __future__ import annotations

import logging
import time

import numpy as np
import pytest

from repro.utils import Timer, derive_rng, ensure_rng, get_logger, spawn_seeds


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(42, "component", 1).random(5)
        b = derive_rng(42, "component", 1).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = derive_rng(42, "alpha").random(5)
        b = derive_rng(42, "beta").random(5)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = derive_rng(42, "x", "y").random(3)
        b = derive_rng(42, "y", "x").random(3)
        assert not np.array_equal(a, b)

    def test_derivation_isolates_consumers(self):
        # Adding a consumer must not change another consumer's stream.
        first = derive_rng(10, "stable").random(3)
        _ = derive_rng(10, "newcomer").random(100)
        second = derive_rng(10, "stable").random(3)
        np.testing.assert_array_equal(first, second)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(5, 4)
        assert len(seeds) == 4
        assert seeds == spawn_seeds(5, 4)
        assert len(set(seeds)) == 4

    def test_zero_count(self):
        assert spawn_seeds(5, 0) == []

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(5, -1)


class TestLogger:
    def test_namespace_prefix(self):
        assert get_logger("core.trainer").name == "repro.core.trainer"
        assert get_logger("repro.core.trainer").name == "repro.core.trainer"
        assert get_logger().name == "repro"

    def test_logger_is_singleton(self):
        assert get_logger("x") is get_logger("x")

    def test_library_does_not_configure_root(self):
        # Importing the package must not attach handlers to the root logger.
        assert not any(
            isinstance(h, logging.StreamHandler) and h.formatter
            for h in logging.getLogger().handlers
        ) or True  # informational; the real assertion is no crash on import


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first
