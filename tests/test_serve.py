"""End-to-end tests for the HTTP serving gateway (repro.serve).

A real ``ThreadingHTTPServer`` is bound to an ephemeral port; requests
travel over actual sockets via the stdlib client. The acceptance bar:
a report obtained over HTTP must reconstruct flags, threshold, and
verdict identical to calling ``DQuaG.validate`` in-process.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.core import DQuaG
from repro.data import Table
from repro.exceptions import GatewayError
from repro.runtime import ValidationService
from repro.serve import Client, ValidationGateway
from repro.serve.cli import DEMO_RECORD, fit_demo_pipeline


def make_batch(pipeline: DQuaG, n: int, seed: int, corrupt: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    y = 2.0 * x + rng.normal(0, 0.01, n)
    if corrupt:
        y[:corrupt] += 5.0
    return Table(
        pipeline.preprocessor.schema,
        {
            "x": x,
            "y": y,
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


@pytest.fixture(scope="module")
def served():
    pipeline = fit_demo_pipeline()
    # shard_workers=2 gives the ?workers= sharded paths a real budget
    # even on single-core CI runners.
    service = ValidationService(capacity=2, shard_workers=2)
    service.add("demo", pipeline)
    with ValidationGateway(service, port=0) as gateway:
        yield pipeline, gateway, Client(port=gateway.port)
    service.close()


class TestEndpoints:
    def test_healthz(self, served):
        _, _, client = served
        payload = client.healthz()
        assert payload["status"] == "ok" and payload["pipelines"] == 1

    def test_http_report_identical_to_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 400, seed=5, corrupt=50)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch)
        np.testing.assert_array_equal(remote.row_flags, local.row_flags)
        np.testing.assert_array_equal(remote.cell_flags, local.cell_flags)
        assert remote.threshold == local.threshold
        assert remote.flagged_fraction == local.flagged_fraction
        assert remote.is_problematic == local.is_problematic
        assert remote.feature_names == local.feature_names
        # Sparse default: error values are exact at flagged coordinates.
        np.testing.assert_array_equal(
            remote.sample_errors[local.row_flags], local.sample_errors[local.row_flags]
        )

    def test_dense_errors_on_request(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 200, seed=6)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch, include_errors=True)
        np.testing.assert_array_equal(remote.sample_errors, local.sample_errors)
        np.testing.assert_array_equal(remote.cell_errors, local.cell_errors)

    def test_repair_matches_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 300, seed=7, corrupt=40)
        records, summary, report = client.repair("demo", batch, iterations=2)
        local_report = pipeline.validate(batch)
        local_repaired, local_summary = pipeline.repair(batch, report=local_report, iterations=2)
        assert records == local_repaired.to_records()
        assert summary.n_cells_repaired == local_summary.n_cells_repaired
        assert summary.repairs_by_column == local_summary.repairs_by_column
        np.testing.assert_array_equal(report.row_flags, local_report.row_flags)

    def test_validate_stream_chunked(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 500, seed=8, corrupt=60)
        local = pipeline.validate(batch)
        chunks = [batch.take(np.arange(i, min(i + 128, batch.n_rows))) for i in range(0, batch.n_rows, 128)]
        rows_before = client.pipelines().pipelines["demo"]["rows_validated"]
        summary = client.validate_stream("demo", chunks)
        assert summary.n_rows == batch.n_rows
        assert summary.n_chunks == len(chunks)
        assert summary.n_flagged == local.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, local.flagged_rows)
        assert summary.is_problematic == local.is_problematic
        # Streamed traffic is counted in the per-pipeline stats too.
        rows_after = client.pipelines().pipelines["demo"]["rows_validated"]
        assert rows_after == rows_before + batch.n_rows

    def test_pipeline_stats_counters(self, served):
        pipeline, _, client = served
        client.validate("demo", make_batch(pipeline, 50, seed=9))
        stats = client.pipelines()
        demo = stats.pipelines["demo"]
        assert demo["resident"] and demo["pinned"]
        assert demo["validations"] >= 1 and demo["rows_validated"] >= 50
        assert stats.registered == 1

    def test_bare_curl_style_request(self, served):
        # What the README's curl example sends: no envelope, raw records.
        _, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/pipelines/demo/validate",
                body=json.dumps({"records": [DEMO_RECORD]}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["kind"] == "validation_report"
            assert payload["n_rows"] == 1
        finally:
            connection.close()


class TestShardedOverHTTP:
    def test_validate_with_workers_identical_to_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 400, seed=21, corrupt=50)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch, workers=2)
        np.testing.assert_array_equal(remote.row_flags, local.row_flags)
        np.testing.assert_array_equal(remote.cell_flags, local.cell_flags)
        assert remote.threshold == local.threshold
        assert remote.is_problematic == local.is_problematic

    def test_workers_field_round_trips_on_requests(self):
        from repro.api.requests import ValidateRequest
        from repro.exceptions import ProtocolError

        request = ValidateRequest(records=[DEMO_RECORD], pipeline="demo", workers=4)
        clone = ValidateRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone.workers == 4
        assert ValidateRequest.from_payload({"records": [DEMO_RECORD]}).workers is None
        assert ValidateRequest.from_payload({"records": [DEMO_RECORD], "workers": 2}).workers == 2
        with pytest.raises(ProtocolError):
            ValidateRequest(records=[DEMO_RECORD], workers=0)
        with pytest.raises(ProtocolError):
            ValidateRequest.from_payload({"records": [DEMO_RECORD], "workers": "lots"})

    def test_stream_with_workers_matches_local_flags(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 500, seed=22, corrupt=40)
        local = pipeline.validate(batch)
        chunks = [
            batch.take(np.arange(i, min(i + 100, batch.n_rows)))
            for i in range(0, batch.n_rows, 100)
        ]
        summary = client.validate_stream("demo", chunks, workers=2)
        assert summary.n_rows == batch.n_rows
        assert summary.n_flagged == local.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, local.flagged_rows)
        assert summary.is_problematic == local.is_problematic

    def test_bad_workers_query_rejected(self, served):
        pipeline, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/pipelines/demo/validate_stream?workers=banana",
                body=json.dumps({"records": [DEMO_RECORD]}) + "\n",
                headers={"Content-Type": "application/x-ndjson"},
            )
            assert connection.getresponse().status == 400
        finally:
            connection.close()


class TestClientFromUrl:
    def test_http_url_with_explicit_port(self):
        client = Client.from_url("http://gateway.internal:8731")
        assert (client.scheme, client.host, client.port) == ("http", "gateway.internal", 8731)

    def test_http_url_defaults_to_port_80(self):
        client = Client.from_url("http://gateway.internal")
        assert (client.scheme, client.port) == ("http", 80)

    def test_https_url_keeps_scheme_and_defaults_to_443(self):
        # Regression: an https:// URL used to silently connect over
        # plain HTTP on port 80.
        client = Client.from_url("https://gateway.internal")
        assert (client.scheme, client.port) == ("https", 443)
        client = Client.from_url("https://gateway.internal:8443")
        assert (client.scheme, client.port) == ("https", 8443)

    def test_scheme_less_url_targets_named_host(self):
        # "host" and "host:port" must reach the named host over HTTP —
        # not fall back to 127.0.0.1, and not be misread as a scheme.
        client = Client.from_url("gateway.internal")
        assert (client.scheme, client.host, client.port) == ("http", "gateway.internal", 80)
        client = Client.from_url("gateway.internal:8443")
        assert (client.scheme, client.host, client.port) == ("http", "gateway.internal", 8443)

    def test_hostless_url_rejected(self):
        with pytest.raises(GatewayError, match="no host"):
            Client.from_url("http://")

    def test_invalid_port_raises_gateway_error(self):
        with pytest.raises(GatewayError, match="invalid port"):
            Client.from_url("gateway.internal:8o80")
        with pytest.raises(GatewayError, match="invalid port"):
            Client.from_url("http://gateway.internal:99999")

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(GatewayError, match="unsupported URL scheme"):
            Client.from_url("ftp://gateway.internal")
        with pytest.raises(GatewayError, match="unsupported URL scheme"):
            Client(scheme="gopher")

    def test_https_client_connects_with_tls(self):
        import http.client as http_client

        connection = Client.from_url("https://gateway.internal")._connect()
        assert isinstance(connection, http_client.HTTPSConnection)


class TestBodyLimits:
    @pytest.fixture(scope="class")
    def small_gateway(self, served):
        pipeline, _, _ = served
        service = ValidationService(capacity=1)
        service.add("demo", pipeline)
        with ValidationGateway(service, port=0, max_body_bytes=4096) as gateway:
            yield pipeline, gateway, Client(port=gateway.port)
        service.close()

    def test_small_requests_still_pass(self, small_gateway):
        pipeline, _, client = small_gateway
        report = client.validate("demo", make_batch(pipeline, 5, seed=1))
        assert report.row_flags.shape == (5,)

    def test_oversized_content_length_refused_413(self, small_gateway):
        pipeline, _, client = small_gateway
        with pytest.raises(GatewayError, match="413"):
            client.validate("demo", make_batch(pipeline, 2000, seed=2))

    def test_hostile_content_length_header_refused_before_read(self, small_gateway):
        # A forged huge Content-Length must be refused outright — the
        # server must not wait for (or try to buffer) a terabyte body.
        _, gateway, _ = small_gateway
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/pipelines/demo/validate")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(1024**4))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["kind"] == "error"
        finally:
            connection.close()

    def test_oversized_stream_chunk_refused_413(self, small_gateway):
        # Each 200-row NDJSON line far exceeds the 4 KiB limit: the
        # per-chunk guard refuses it before buffering.
        pipeline, _, client = small_gateway
        chunks = [make_batch(pipeline, 200, seed=3) for _ in range(10)]
        with pytest.raises(GatewayError, match="413"):
            client.validate_stream("demo", chunks)

    def test_long_stream_of_small_chunks_is_not_capped(self, small_gateway):
        # The stream endpoint is consumed incrementally, so the limit
        # bounds each chunk/line — not the cumulative stream length.
        pipeline, _, client = small_gateway
        chunks = [make_batch(pipeline, 8, seed=s) for s in range(30)]  # ~25 KiB total
        summary = client.validate_stream("demo", chunks)
        assert summary.n_rows == 240
        assert summary.n_chunks == 30

    def test_content_length_stream_body_over_limit_with_small_lines(self, small_gateway):
        # A plain (non-chunked) body: multiple small NDJSON lines whose
        # total exceeds the limit must pass — only a single line may not
        # outgrow it.
        pipeline, gateway, _ = small_gateway
        lines = b"".join(
            json.dumps({"records": make_batch(pipeline, 8, seed=s).to_records()}).encode()
            + b"\n"
            for s in range(10)
        )
        assert len(lines) > 4096  # over the gateway's whole-body limit
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/pipelines/demo/validate_stream",
                body=lines,
                headers={"Content-Type": "application/x-ndjson"},
            )
            response = connection.getresponse()
            assert response.status == 200
            payloads = [json.loads(raw) for raw in response.read().splitlines() if raw.strip()]
            assert payloads[-1]["kind"] == "stream_summary"
            assert payloads[-1]["n_rows"] == 80
        finally:
            connection.close()

    def test_invalid_max_body_bytes_rejected(self, served):
        _, gateway, _ = served
        with pytest.raises(ValueError):
            ValidationGateway(gateway.service, port=0, max_body_bytes=0)


class TestErrorHandling:
    def test_unknown_pipeline_404(self, served):
        pipeline, _, client = served
        with pytest.raises(GatewayError, match="404"):
            client.validate("nope", make_batch(pipeline, 10, seed=1))

    def test_unknown_route_404(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="404"):
            client._request("GET", "/v2/healthz")

    def test_schema_mismatch_400(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="400"):
            client.validate("demo", [{"bogus_column": 1.0}])

    def test_empty_records_400(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="400"):
            client.validate("demo", [])

    def test_malformed_json_400(self, served):
        _, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/pipelines/demo/validate", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["kind"] == "error"
        finally:
            connection.close()

    def test_schema_version_gate_on_requests(self, served):
        _, gateway, _ = served
        body = json.dumps(
            {"schema_version": 99, "kind": "validate_request", "records": [DEMO_RECORD]}
        )
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/pipelines/demo/validate", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "schema_version" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_pipeline_name_mismatch_400(self, served):
        _, _, client = served
        request_payload = {"records": [DEMO_RECORD], "pipeline": "other"}
        with pytest.raises(GatewayError, match="does not match"):
            client._request("POST", "/v1/pipelines/demo/validate", request_payload)

    def test_empty_stream_400(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="400"):
            client.validate_stream("demo", [])

    def test_mid_stream_error_returns_400(self, served):
        # Responses are deferred until the body is consumed, so even an
        # error on a later chunk comes back as a clean status code.
        pipeline, _, client = served
        good = make_batch(pipeline, 64, seed=2)

        def chunks():
            yield good
            yield [{"bogus_column": 1.0}]

        with pytest.raises(GatewayError, match="400"):
            client.validate_stream("demo", chunks())

    def test_long_stream_does_not_deadlock(self, served):
        # Many chunks: the upload must complete even though the gateway
        # produces one ack line per chunk (acks are deferred, not
        # interleaved with the upload).
        pipeline, _, client = served
        batch = make_batch(pipeline, 600, seed=3)
        chunks = [batch.take(np.arange(i, i + 4)) for i in range(0, batch.n_rows, 4)]
        summary = client.validate_stream("demo", chunks)
        assert summary.n_chunks == 150 and summary.n_rows == batch.n_rows
