"""End-to-end tests for the HTTP serving gateway (repro.serve).

A real ``ThreadingHTTPServer`` is bound to an ephemeral port; requests
travel over actual sockets via the stdlib client. The acceptance bar:
a report obtained over HTTP must reconstruct flags, threshold, and
verdict identical to calling ``DQuaG.validate`` in-process.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.core import DQuaG
from repro.data import Table
from repro.exceptions import GatewayError
from repro.runtime import ValidationService
from repro.serve import Client, ValidationGateway
from repro.serve.cli import DEMO_RECORD, fit_demo_pipeline


def make_batch(pipeline: DQuaG, n: int, seed: int, corrupt: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    y = 2.0 * x + rng.normal(0, 0.01, n)
    if corrupt:
        y[:corrupt] += 5.0
    return Table(
        pipeline.preprocessor.schema,
        {
            "x": x,
            "y": y,
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


@pytest.fixture(scope="module")
def served():
    pipeline = fit_demo_pipeline()
    service = ValidationService(capacity=2)
    service.add("demo", pipeline)
    with ValidationGateway(service, port=0) as gateway:
        yield pipeline, gateway, Client(port=gateway.port)
    service.close()


class TestEndpoints:
    def test_healthz(self, served):
        _, _, client = served
        payload = client.healthz()
        assert payload["status"] == "ok" and payload["pipelines"] == 1

    def test_http_report_identical_to_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 400, seed=5, corrupt=50)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch)
        np.testing.assert_array_equal(remote.row_flags, local.row_flags)
        np.testing.assert_array_equal(remote.cell_flags, local.cell_flags)
        assert remote.threshold == local.threshold
        assert remote.flagged_fraction == local.flagged_fraction
        assert remote.is_problematic == local.is_problematic
        assert remote.feature_names == local.feature_names
        # Sparse default: error values are exact at flagged coordinates.
        np.testing.assert_array_equal(
            remote.sample_errors[local.row_flags], local.sample_errors[local.row_flags]
        )

    def test_dense_errors_on_request(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 200, seed=6)
        local = pipeline.validate(batch)
        remote = client.validate("demo", batch, include_errors=True)
        np.testing.assert_array_equal(remote.sample_errors, local.sample_errors)
        np.testing.assert_array_equal(remote.cell_errors, local.cell_errors)

    def test_repair_matches_in_process(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 300, seed=7, corrupt=40)
        records, summary, report = client.repair("demo", batch, iterations=2)
        local_report = pipeline.validate(batch)
        local_repaired, local_summary = pipeline.repair(batch, report=local_report, iterations=2)
        assert records == local_repaired.to_records()
        assert summary.n_cells_repaired == local_summary.n_cells_repaired
        assert summary.repairs_by_column == local_summary.repairs_by_column
        np.testing.assert_array_equal(report.row_flags, local_report.row_flags)

    def test_validate_stream_chunked(self, served):
        pipeline, _, client = served
        batch = make_batch(pipeline, 500, seed=8, corrupt=60)
        local = pipeline.validate(batch)
        chunks = [batch.take(np.arange(i, min(i + 128, batch.n_rows))) for i in range(0, batch.n_rows, 128)]
        rows_before = client.pipelines().pipelines["demo"]["rows_validated"]
        summary = client.validate_stream("demo", chunks)
        assert summary.n_rows == batch.n_rows
        assert summary.n_chunks == len(chunks)
        assert summary.n_flagged == local.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, local.flagged_rows)
        assert summary.is_problematic == local.is_problematic
        # Streamed traffic is counted in the per-pipeline stats too.
        rows_after = client.pipelines().pipelines["demo"]["rows_validated"]
        assert rows_after == rows_before + batch.n_rows

    def test_pipeline_stats_counters(self, served):
        pipeline, _, client = served
        client.validate("demo", make_batch(pipeline, 50, seed=9))
        stats = client.pipelines()
        demo = stats.pipelines["demo"]
        assert demo["resident"] and demo["pinned"]
        assert demo["validations"] >= 1 and demo["rows_validated"] >= 50
        assert stats.registered == 1

    def test_bare_curl_style_request(self, served):
        # What the README's curl example sends: no envelope, raw records.
        _, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/pipelines/demo/validate",
                body=json.dumps({"records": [DEMO_RECORD]}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["kind"] == "validation_report"
            assert payload["n_rows"] == 1
        finally:
            connection.close()


class TestErrorHandling:
    def test_unknown_pipeline_404(self, served):
        pipeline, _, client = served
        with pytest.raises(GatewayError, match="404"):
            client.validate("nope", make_batch(pipeline, 10, seed=1))

    def test_unknown_route_404(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="404"):
            client._request("GET", "/v2/healthz")

    def test_schema_mismatch_400(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="400"):
            client.validate("demo", [{"bogus_column": 1.0}])

    def test_empty_records_400(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="400"):
            client.validate("demo", [])

    def test_malformed_json_400(self, served):
        _, gateway, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/pipelines/demo/validate", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["kind"] == "error"
        finally:
            connection.close()

    def test_schema_version_gate_on_requests(self, served):
        _, gateway, _ = served
        body = json.dumps(
            {"schema_version": 99, "kind": "validate_request", "records": [DEMO_RECORD]}
        )
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/pipelines/demo/validate", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "schema_version" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_pipeline_name_mismatch_400(self, served):
        _, _, client = served
        request_payload = {"records": [DEMO_RECORD], "pipeline": "other"}
        with pytest.raises(GatewayError, match="does not match"):
            client._request("POST", "/v1/pipelines/demo/validate", request_payload)

    def test_empty_stream_400(self, served):
        _, _, client = served
        with pytest.raises(GatewayError, match="400"):
            client.validate_stream("demo", [])

    def test_mid_stream_error_returns_400(self, served):
        # Responses are deferred until the body is consumed, so even an
        # error on a later chunk comes back as a clean status code.
        pipeline, _, client = served
        good = make_batch(pipeline, 64, seed=2)

        def chunks():
            yield good
            yield [{"bogus_column": 1.0}]

        with pytest.raises(GatewayError, match="400"):
            client.validate_stream("demo", chunks())

    def test_long_stream_does_not_deadlock(self, served):
        # Many chunks: the upload must complete even though the gateway
        # produces one ack line per chunk (acks are deferred, not
        # interleaved with the upload).
        pipeline, _, client = served
        batch = make_batch(pipeline, 600, seed=3)
        chunks = [batch.take(np.arange(i, i + 4)) for i in range(0, batch.n_rows, 4)]
        summary = client.validate_stream("demo", chunks)
        assert summary.n_chunks == 150 and summary.n_rows == batch.n_rows
