"""Tests for the four baseline validators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ADQVValidator,
    DeequValidator,
    GateValidator,
    TFDVValidator,
    batch_statistics_vector,
    histogram_distance,
    partition_summary,
    profile_table,
)
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.errors import MissingValueInjector, NumericAnomalyInjector, StringTypoInjector
from repro.exceptions import ConfigurationError, NotFittedError


def make_table(n: int, seed: int, integral: bool = False) -> Table:
    rng = np.random.default_rng(seed)
    values = rng.normal(50.0, 10.0, n)
    if integral:
        values = np.round(values)
    schema = TableSchema(
        [
            ColumnSpec("value", ColumnKind.NUMERIC),
            ColumnSpec("count", ColumnKind.NUMERIC),
            ColumnSpec("kind", ColumnKind.CATEGORICAL),
        ]
    )
    return Table(
        schema,
        {
            "value": values,
            "count": rng.integers(0, 20, n).astype(float),
            "kind": rng.choice(["red", "green", "blue"], n),
        },
    )


@pytest.fixture
def train() -> Table:
    return make_table(2000, seed=0)


@pytest.fixture
def clean_batch() -> Table:
    return make_table(300, seed=1)


class TestProfiles:
    def test_profile_numeric(self, train):
        profiles = profile_table(train)
        value = profiles["value"]
        assert value.completeness == 1.0
        assert value.minimum < value.mean < value.maximum
        assert not value.is_integral  # continuous normals

    def test_profile_integral_detection(self):
        table = make_table(100, seed=0, integral=True)
        assert profile_table(table)["value"].is_integral

    def test_profile_categorical(self, train):
        kind = profile_table(train)["kind"]
        assert kind.domain == frozenset({"red", "green", "blue"})

    def test_histogram_distance_zero_for_same_data(self, train):
        profile = profile_table(train)["value"]
        assert histogram_distance(profile, train["value"]) < 0.05

    def test_histogram_distance_large_for_shift(self, train):
        profile = profile_table(train)["value"]
        assert histogram_distance(profile, train["value"] + 100.0) > 0.5


class TestDeequ:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            DeequValidator("hybrid")

    def test_unfitted(self, clean_batch):
        with pytest.raises(NotFittedError):
            DeequValidator("auto").validate_batch(clean_batch)

    def test_auto_overly_strict_on_clean(self, train):
        # Auto profiles a 10% sample: held-out clean batches routinely
        # carry values beyond the sample extremes -> false positives.
        validator = DeequValidator("auto").fit(train, rng=0)
        flags = [
            validator.validate_batch(make_table(300, seed=s)).is_problematic for s in range(2, 22)
        ]
        assert np.mean(flags) > 0.5

    def test_expert_accepts_clean(self, train):
        validator = DeequValidator("expert").fit(train, rng=0)
        flags = [
            validator.validate_batch(make_table(300, seed=s)).is_problematic for s in range(2, 12)
        ]
        assert np.mean(flags) <= 0.1

    def test_expert_catches_anomalies(self, train, clean_batch):
        validator = DeequValidator("expert").fit(train, rng=0)
        dirty, _ = NumericAnomalyInjector(["value"], fraction=0.2).inject(clean_batch, rng=3)
        verdict = validator.validate_batch(dirty)
        assert verdict.is_problematic
        assert verdict.flagged_rows.size > 0

    def test_expert_catches_typos_and_missing(self, train, clean_batch):
        validator = DeequValidator("expert").fit(train, rng=0)
        typos, _ = StringTypoInjector(["kind"], fraction=0.2).inject(clean_batch, rng=4)
        missing, _ = MissingValueInjector(["count"], fraction=0.2).inject(clean_batch, rng=5)
        assert validator.validate_batch(typos).is_problematic
        assert validator.validate_batch(missing).is_problematic

    def test_row_flags_match_corrupted_rows(self, train, clean_batch):
        validator = DeequValidator("expert").fit(train, rng=0)
        dirty, truth = NumericAnomalyInjector(["value"], fraction=0.2).inject(clean_batch, rng=6)
        verdict = validator.validate_batch(dirty)
        flagged = set(verdict.flagged_rows.tolist())
        corrupted = set(np.flatnonzero(truth.row_mask).tolist())
        # Range violations only fire on truly out-of-range cells.
        assert flagged <= corrupted
        assert len(flagged) > 0.5 * len(corrupted)


class TestTFDV:
    def test_auto_misses_float_anomalies(self, train, clean_batch):
        # Continuous float columns get no bounds in the inferred schema.
        validator = TFDVValidator("auto").fit(train)
        dirty, _ = NumericAnomalyInjector(["value"], fraction=0.2, scale_factor=3.0,
                                          out_of_range_sigma=6.0).inject(clean_batch, rng=3)
        assert not validator.validate_batch(dirty).is_problematic

    def test_auto_catches_small_int_anomalies(self, train, clean_batch):
        # "count" is a small-cardinality integer column: its inferred
        # schema carries bounds, so scaled-out values are anomalies.
        validator = TFDVValidator("auto").fit(train)
        dirty, _ = NumericAnomalyInjector(["count"], fraction=0.2).inject(clean_batch, rng=3)
        assert validator.validate_batch(dirty).is_problematic

    def test_auto_ignores_wide_int_anomalies(self, clean_batch):
        # Integral but high-cardinality columns (ids, day counts) get no
        # bounds in the inferred schema — TFDV's documented blind spot.
        train_int = make_table(2000, seed=0, integral=True)
        validator = TFDVValidator("auto").fit(train_int)
        batch = make_table(300, seed=9, integral=True)
        dirty, _ = NumericAnomalyInjector(["value"], fraction=0.2, scale_factor=3.0,
                                          out_of_range_sigma=6.0).inject(batch, rng=3)
        assert not validator.validate_batch(dirty).is_problematic

    def test_expert_catches_float_anomalies(self, train, clean_batch):
        validator = TFDVValidator("expert").fit(train)
        dirty, _ = NumericAnomalyInjector(["value"], fraction=0.2).inject(clean_batch, rng=3)
        assert validator.validate_batch(dirty).is_problematic

    def test_auto_catches_new_categories(self, train, clean_batch):
        validator = TFDVValidator("auto").fit(train)
        dirty, _ = StringTypoInjector(["kind"], fraction=0.2).inject(clean_batch, rng=4)
        assert validator.validate_batch(dirty).is_problematic

    def test_auto_catches_missingness(self, train, clean_batch):
        validator = TFDVValidator("auto").fit(train)
        dirty, _ = MissingValueInjector(["value"], fraction=0.2).inject(clean_batch, rng=5)
        assert validator.validate_batch(dirty).is_problematic

    def test_clean_batches_pass(self, train):
        for mode in ("auto", "expert"):
            validator = TFDVValidator(mode).fit(train)
            flags = [
                validator.validate_batch(make_table(300, seed=s)).is_problematic
                for s in range(2, 12)
            ]
            assert np.mean(flags) <= 0.2, mode

    def test_drift_detection(self, train):
        validator = TFDVValidator("expert").fit(train)
        shifted = make_table(300, seed=3)
        verdict = validator.validate_batch(shifted.with_column("value", shifted["value"] + 25.0))
        assert verdict.is_problematic
        assert verdict.details["drifted_columns"] == ["value"]


class TestADQV:
    def test_statistics_vector_fixed_length(self, train):
        a = batch_statistics_vector(make_table(100, seed=1))
        b = batch_statistics_vector(make_table(200, seed=2))
        assert a.shape == b.shape

    def test_clean_batches_pass(self, train):
        validator = ADQVValidator(reference_batch_size=300).fit(train, rng=0)
        flags = [
            validator.validate_batch(make_table(300, seed=s)).is_problematic for s in range(2, 22)
        ]
        assert np.mean(flags) <= 0.15

    def test_marginal_shifts_detected(self, train, clean_batch):
        validator = ADQVValidator(reference_batch_size=300).fit(train, rng=0)
        anomalies, _ = NumericAnomalyInjector(["value"], fraction=0.2).inject(clean_batch, rng=3)
        missing, _ = MissingValueInjector(["value"], fraction=0.2).inject(clean_batch, rng=4)
        assert validator.validate_batch(anomalies).is_problematic
        assert validator.validate_batch(missing).is_problematic

    def test_no_row_flags(self, train, clean_batch):
        validator = ADQVValidator(reference_batch_size=300).fit(train, rng=0)
        assert not validator.supports_row_flags
        assert validator.validate_batch(clean_batch).flagged_rows.size == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ADQVValidator(k=0)

    def test_unfitted(self, clean_batch):
        with pytest.raises(NotFittedError):
            ADQVValidator().validate_batch(clean_batch)


class TestGate:
    def test_partition_summary_keys(self, train):
        summary = partition_summary(train)
        assert "value.mean" in summary and "kind.cardinality" in summary

    def test_clean_batches_mostly_pass(self, train):
        validator = GateValidator(reference_batch_size=300).fit(train, rng=0)
        flags = [
            validator.validate_batch(make_table(300, seed=s)).is_problematic for s in range(2, 22)
        ]
        assert np.mean(flags) <= 0.4  # Gate is strict by design

    def test_shifts_detected(self, train, clean_batch):
        validator = GateValidator(reference_batch_size=300).fit(train, rng=0)
        dirty, _ = NumericAnomalyInjector(["value"], fraction=0.2).inject(clean_batch, rng=3)
        verdict = validator.validate_batch(dirty)
        assert verdict.is_problematic
        assert any("value" in name for name in verdict.details["out_of_band_statistics"])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GateValidator(sensitivity=0.0)
        with pytest.raises(ValueError):
            GateValidator(vote_fraction=0.0)

    def test_unfitted(self, clean_batch):
        with pytest.raises(NotFittedError):
            GateValidator().validate_batch(clean_batch)
