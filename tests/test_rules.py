"""Declarative rule engine: parsing, compilation, evaluation, fusion.

Unit coverage for :mod:`repro.rules` — the JSON predicate vocabulary and
its structural validation, compile-time schema checks against a fitted
preprocessor, the vectorized evaluation semantics (boundary-exact range
checks, missing/unknown handling, uniqueness, conditionals), the exact
chunked fold, and the additive fusion into ``ValidationReport`` — plus
the serving surface: service-level rule registration with generation
tagging, the gateway's ``/rules`` endpoints with their 400/404/422
mappings, and the client's 503-only retry guard.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.api import protocol
from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.data.preprocess import TablePreprocessor
from repro.exceptions import GatewayError, ReproError, RuleConfigError, ValidationError
from repro.rules import (
    PREDICATE_TYPES,
    SEVERITIES,
    Rule,
    RulePartial,
    RuleReport,
    RuleSet,
    apply_rules,
    fold_rule_partials,
    parse_predicate,
    resolve_rules,
    resolve_ruleset,
)
from repro.runtime import ValidationService
from repro.serve import Client, ValidationGateway


# ---------------------------------------------------------------------------
# fixtures: a plain fitted preprocessor (no model) + a tiny fitted pipeline
# ---------------------------------------------------------------------------
def make_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("id", ColumnKind.NUMERIC, "row id"),
            ColumnSpec("amount", ColumnKind.NUMERIC, "amount"),
            ColumnSpec("limit", ColumnKind.NUMERIC, "cap"),
            ColumnSpec("cat", ColumnKind.CATEGORICAL, "code", categories=("aa", "bb", "cc")),
        ]
    )


def make_fit_table() -> Table:
    n = 21
    amount = np.linspace(0.0, 100.0, n)
    return Table(
        make_schema(),
        {
            "id": np.arange(n, dtype=np.float64),
            "amount": amount,
            "limit": amount + 10.0,
            "cat": np.array([("aa", "bb", "cc")[i % 3] for i in range(n)]),
        },
    )


def make_eval_table() -> Table:
    return Table(
        make_schema(),
        {
            "id": np.array([0.0, 1.0, 1.0, 2.0, np.nan, 3.0, 4.0, 5.0]),
            "amount": np.array([5.0, 10.0, 50.0, 90.0, 95.0, np.nan, 60.0, 20.0]),
            "limit": np.array([50.0, 100.0, 100.0, 100.0, 100.0, 100.0, 50.0, 100.0]),
            "cat": np.array(
                ["aa", "bb", "cc", "zz", "aa", None, "aa", "bb"], dtype=object
            ),
        },
    )


RULES_DOC = {
    "name": "unit-checks",
    "revision": 2,
    "rules": [
        {"id": "r-range", "severity": "error",
         "predicate": {"type": "range", "column": "amount", "min": 10, "max": 90}},
        {"id": "r-notnull-amount", "severity": "warn",
         "predicate": {"type": "not_null", "column": "amount"}},
        {"id": "r-notnull-cat", "severity": "info",
         "predicate": {"type": "not_null", "column": "cat"}},
        {"id": "r-inset", "severity": "warn",
         "predicate": {"type": "in_set", "column": "cat", "values": ["aa", "bb"]}},
        {"id": "r-regex", "severity": "info",
         "predicate": {"type": "regex", "column": "cat", "pattern": "a+"}},
        {"id": "r-unique", "severity": "error",
         "predicate": {"type": "unique", "column": "id"}},
        {"id": "r-compare", "severity": "error",
         "predicate": {"type": "compare", "left": "amount", "op": "le", "right": "limit"}},
        {"id": "r-cond", "severity": "info",
         "predicate": {"type": "conditional",
                       "when": {"type": "in_set", "column": "cat", "values": ["aa"]},
                       "then": {"type": "range", "column": "amount", "max": 50}}},
    ],
}

#: expected violating cells per rule on make_eval_table()
#: (column order: id=0, amount=1, limit=2, cat=3)
EXPECTED_CELLS = {
    "r-range": {(0, 1), (4, 1)},
    "r-notnull-amount": {(5, 1)},
    "r-notnull-cat": {(5, 3)},
    "r-inset": {(2, 3), (3, 3)},
    "r-regex": {(1, 3), (2, 3), (3, 3), (7, 3)},
    "r-unique": {(1, 0), (2, 0)},
    "r-compare": {(6, 1), (6, 2)},
    "r-cond": {(4, 1), (6, 1)},
}


@pytest.fixture(scope="module")
def preprocessor() -> TablePreprocessor:
    return TablePreprocessor(make_schema()).fit(make_fit_table())


@pytest.fixture(scope="module")
def ruleset() -> RuleSet:
    return RuleSet.from_payload(RULES_DOC)


@pytest.fixture(scope="module")
def rule_report(preprocessor, ruleset) -> RuleReport:
    plan = ruleset.compile(preprocessor)
    table = make_eval_table()
    matrix = preprocessor.compile().transform(table)
    partial = plan.evaluate(matrix)
    return fold_rule_partials(
        [(0, table.n_rows, partial)], ruleset, list(preprocessor.schema.names)
    )


# ---------------------------------------------------------------------------
# predicate + rule-set parsing (structural validation, no preprocessor)
# ---------------------------------------------------------------------------
class TestParsing:
    def test_every_predicate_type_roundtrips_through_its_spec(self):
        specs = [rule["predicate"] for rule in RULES_DOC["rules"]]
        assert {spec["type"] for spec in specs} == set(PREDICATE_TYPES)
        for spec in specs:
            parsed = parse_predicate(spec)
            reparsed = parse_predicate(parsed.to_spec())
            assert parsed == reparsed

    @pytest.mark.parametrize(
        "spec, message",
        [
            ({"type": "no_such"}, "unknown predicate type"),
            ({"type": "range", "column": "a"}, "needs 'min' and/or 'max'"),
            ({"type": "range", "column": "a", "min": 9, "max": 1}, "exceeds max"),
            ({"type": "range", "column": "a", "min": True}, "expected a number"),
            ({"type": "range", "column": "", "min": 0}, "non-empty string"),
            ({"type": "range", "column": "a", "min": 0, "extra": 1}, "unknown key"),
            ({"type": "in_set", "column": "a", "values": []}, "non-empty list"),
            ({"type": "in_set", "column": "a", "values": ["x", "x"]}, "duplicate values"),
            ({"type": "in_set", "column": "a", "values": [1]}, "expected strings"),
            ({"type": "regex", "column": "a", "pattern": "("}, "invalid regex"),
            ({"type": "compare", "left": "a", "op": "??", "right": "b"}, "unknown operator"),
            ({"type": "compare", "left": "a", "op": "le", "right": "a"}, "distinct columns"),
            ({"type": "conditional",
              "when": {"type": "unique", "column": "a"},
              "then": {"type": "not_null", "column": "a"}}, "cannot nest"),
            ({"type": "conditional",
              "when": {"type": "not_null", "column": "a"},
              "then": {"type": "conditional",
                       "when": {"type": "not_null", "column": "a"},
                       "then": {"type": "not_null", "column": "a"}}}, "cannot nest"),
            ("not-a-dict", "must be an object"),
        ],
    )
    def test_malformed_predicates_are_rejected(self, spec, message):
        with pytest.raises(RuleConfigError, match=message):
            parse_predicate(spec)

    @pytest.mark.parametrize(
        "rule, message",
        [
            ({"predicate": {"type": "not_null", "column": "a"}}, "missing required key 'id'"),
            ({"id": "r"}, "missing required key 'predicate'"),
            ({"id": "r", "severity": "fatal",
              "predicate": {"type": "not_null", "column": "a"}}, "unknown severity"),
            ({"id": "r", "scope": "table",
              "predicate": {"type": "not_null", "column": "a"}}, "conflicts with"),
            ({"id": "r", "shout": True,
              "predicate": {"type": "not_null", "column": "a"}}, "unknown key"),
            ({"id": "", "predicate": {"type": "not_null", "column": "a"}}, "non-empty string"),
        ],
    )
    def test_malformed_rules_are_rejected(self, rule, message):
        with pytest.raises(RuleConfigError, match=message):
            Rule.from_dict(rule)

    def test_duplicate_rule_ids_are_rejected(self):
        rule = Rule("same", parse_predicate({"type": "not_null", "column": "a"}))
        with pytest.raises(RuleConfigError, match="duplicate rule id"):
            RuleSet([rule, rule])

    def test_unsupported_rule_schema_version_is_rejected(self):
        with pytest.raises(RuleConfigError, match="rule_schema_version"):
            RuleSet.from_payload({"rule_schema_version": 99, "rules": []})

    @pytest.mark.parametrize("revision", [0, -1, 1.5, True, "2"])
    def test_bad_revisions_are_rejected(self, revision):
        with pytest.raises(RuleConfigError, match="revision"):
            RuleSet.from_payload({"rules": [], "revision": revision})

    def test_invalid_json_and_missing_files_are_rejected(self, tmp_path):
        with pytest.raises(RuleConfigError, match="not valid JSON"):
            RuleSet.from_json("{nope")
        with pytest.raises(RuleConfigError, match="cannot read rule file"):
            RuleSet.from_file(tmp_path / "absent.json")

    def test_ruleset_roundtrips_and_fingerprint_is_content_addressed(self, ruleset):
        payload = ruleset.to_dict()
        again = RuleSet.from_dict(json.loads(json.dumps(payload)))
        assert again == ruleset
        assert again.fingerprint == ruleset.fingerprint
        reordered = RuleSet(list(ruleset.rules)[::-1], name=ruleset.name,
                            revision=ruleset.revision)
        assert reordered.fingerprint != ruleset.fingerprint

    def test_from_payload_accepts_bare_and_enveloped_forms(self, ruleset):
        bare = {"rules": RULES_DOC["rules"], "name": "unit-checks", "revision": 2}
        assert RuleSet.from_payload(bare) == ruleset
        assert RuleSet.from_payload(ruleset.to_dict()) == ruleset
        assert RuleSet.from_payload(ruleset) is ruleset

    def test_resolvers_normalize_every_accepted_form(self, preprocessor, ruleset, tmp_path):
        plan = ruleset.compile(preprocessor)
        assert resolve_rules(None, preprocessor) is None
        assert resolve_rules(plan, preprocessor) is plan
        assert resolve_rules(ruleset, preprocessor) is plan  # compile cache
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(RULES_DOC))
        assert resolve_rules(path, preprocessor).ruleset == ruleset
        assert resolve_ruleset(None) is None
        assert resolve_ruleset(plan) is ruleset
        assert resolve_ruleset(RULES_DOC) == ruleset
        assert resolve_ruleset(path) == ruleset


# ---------------------------------------------------------------------------
# compilation against a fitted schema
# ---------------------------------------------------------------------------
class TestCompile:
    @pytest.mark.parametrize(
        "spec, message",
        [
            ({"type": "range", "column": "ghost", "min": 0}, "unknown column"),
            ({"type": "range", "column": "cat", "min": 0}, "requires a numeric column"),
            ({"type": "in_set", "column": "amount", "values": ["aa"]},
             "requires a categorical column"),
            ({"type": "in_set", "column": "cat", "values": ["aa", "zz"]},
             "not fitted categories"),
            ({"type": "regex", "column": "cat", "pattern": "zz+"}, "matches no"),
            ({"type": "compare", "left": "amount", "op": "le", "right": "cat"},
             "requires a numeric column"),
        ],
    )
    def test_schema_incompatible_rules_fail_at_compile_time(
        self, preprocessor, spec, message
    ):
        ruleset = RuleSet([Rule("bad", parse_predicate(spec))])
        with pytest.raises(RuleConfigError, match=message):
            ruleset.compile(preprocessor)

    def test_degenerate_constant_column_is_rejected(self):
        schema = TableSchema([ColumnSpec("k", ColumnKind.NUMERIC, "constant")])
        fitted = TablePreprocessor(schema).fit(
            Table(schema, {"k": np.full(8, 3.0)})
        )
        ruleset = RuleSet(
            [Rule("k-range", parse_predicate({"type": "range", "column": "k", "min": 0}))]
        )
        with pytest.raises(RuleConfigError, match="degenerate"):
            ruleset.compile(fitted)

    def test_in_set_accepts_future_categories(self):
        fitted = TablePreprocessor(make_schema()).fit(
            make_fit_table(), future_categories={"cat": ["dd"]}
        )
        ruleset = RuleSet(
            [Rule("dd-ok", parse_predicate(
                {"type": "in_set", "column": "cat", "values": ["aa", "dd"]}
            ))]
        )
        plan = ruleset.compile(fitted)
        table = Table(
            make_schema(),
            {
                "id": np.array([0.0, 1.0]),
                "amount": np.array([10.0, 20.0]),
                "limit": np.array([50.0, 50.0]),
                "cat": np.array(["dd", "bb"]),
            },
        )
        report = fold_rule_partials(
            [(0, 2, plan.evaluate(fitted.compile().transform(table)))],
            ruleset,
            list(fitted.schema.names),
        )
        # "dd" is a fitted (future) category and allowed; "bb" violates.
        assert {(int(r), int(c)) for r, c in zip(report.cell_rows, report.cell_cols)} == {(1, 3)}

    def test_compile_is_cached_per_preprocessor(self, preprocessor, ruleset):
        assert ruleset.compile(preprocessor) is ruleset.compile(preprocessor)

    def test_evaluate_rejects_mismatched_matrices(self, preprocessor, ruleset):
        plan = ruleset.compile(preprocessor)
        with pytest.raises(ValidationError, match="compiled for 4 features"):
            plan.evaluate(np.zeros((3, 2)))


# ---------------------------------------------------------------------------
# evaluation semantics
# ---------------------------------------------------------------------------
class TestEvaluation:
    def test_each_rule_flags_exactly_the_expected_cells(self, rule_report):
        for rule_id, expected in EXPECTED_CELLS.items():
            outcome = rule_report.outcome(rule_id)
            assert outcome.n_cells == len(expected), rule_id
            assert outcome.n_rows == len({row for row, _ in expected}), rule_id

    def test_fused_cells_dedupe_at_max_severity(self, rule_report):
        all_cells = set()
        for cells in EXPECTED_CELLS.values():
            all_cells |= cells
        got = {(int(r), int(c)) for r, c in zip(rule_report.cell_rows, rule_report.cell_cols)}
        assert got == all_cells
        # (4, amount): error r-range + info r-cond → error wins.
        assert rule_report.severity_of(4, "amount") == "error"
        # (2, cat): warn r-inset + info r-regex → warn wins.
        assert rule_report.severity_of(2, "cat") == "warn"
        assert rule_report.severity_of(0, "id") is None
        assert rule_report.by_severity() == {"info": 3, "warn": 3, "error": 6}
        assert rule_report.max_severity == "error"

    def test_boundary_values_do_not_violate_range(self, rule_report):
        # amounts 10.0 and 90.0 sit exactly on the rule bounds: the
        # compile-time affine push makes the comparison boundary-exact.
        range_cells = EXPECTED_CELLS["r-range"]
        assert (1, 1) not in range_cells and (3, 1) not in range_cells
        assert rule_report.severity_of(1, "amount") is None
        assert rule_report.severity_of(3, "amount") is None

    def test_missing_cells_only_violate_not_null(self, rule_report):
        # Row 5 (amount=NaN, cat=None) is invisible to range/in_set/regex.
        assert rule_report.severity_of(5, "amount") == "warn"   # not_null only
        assert rule_report.severity_of(5, "cat") == "info"      # not_null only

    def test_unknown_categories_violate_membership_but_not_uniqueness(self, preprocessor):
        ruleset = RuleSet(
            [Rule("cat-unique", parse_predicate({"type": "unique", "column": "cat"}))]
        )
        plan = ruleset.compile(preprocessor)
        table = make_eval_table().with_column(
            "cat", np.array(["aa", "zz", "yy", "bb", "cc", None, "xx", "bb"], dtype=object)
        )
        report = fold_rule_partials(
            [(0, 8, plan.evaluate(preprocessor.compile().transform(table)))],
            ruleset,
            list(preprocessor.schema.names),
        )
        # zz/yy/xx all encode to the unknown position, but two *different*
        # novel strings are not duplicates — only the real bb pair flags.
        flagged = {int(r) for r in report.cell_rows}
        assert flagged == {3, 7}

    def test_report_helpers_are_consistent(self, rule_report):
        mask = rule_report.cell_mask()
        assert mask.shape == (8, 4)
        assert int(mask.sum()) == rule_report.n_cells == 12
        np.testing.assert_array_equal(
            rule_report.flagged_rows, np.unique(rule_report.cell_rows)
        )
        assert rule_report.n_flagged_rows == len(set(rule_report.cell_rows.tolist()))
        assert "12 violating cell(s)" in rule_report.summary()
        with pytest.raises(KeyError):
            rule_report.outcome("no-such-rule")

    def test_empty_table_slice_produces_an_empty_report(self, preprocessor, ruleset):
        plan = ruleset.compile(preprocessor)
        partial = plan.evaluate(np.empty((0, 4)))
        report = fold_rule_partials(
            [(0, 0, partial)], ruleset, list(preprocessor.schema.names)
        )
        assert report.n_cells == 0
        assert report.max_severity is None
        assert report.by_severity() == {name: 0 for name in SEVERITIES}


# ---------------------------------------------------------------------------
# the chunked fold is exact
# ---------------------------------------------------------------------------
class TestFold:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 8])
    def test_chunked_fold_is_bit_identical_to_one_shot(
        self, preprocessor, ruleset, rule_report, chunk_size
    ):
        plan = ruleset.compile(preprocessor)
        matrix = preprocessor.compile().transform(make_eval_table())
        parts = []
        for start in range(0, matrix.shape[0], chunk_size):
            chunk = matrix[start : start + chunk_size]
            parts.append((start, chunk.shape[0], plan.evaluate(chunk)))
        folded = fold_rule_partials(parts, ruleset, list(preprocessor.schema.names))
        np.testing.assert_array_equal(folded.cell_rows, rule_report.cell_rows)
        np.testing.assert_array_equal(folded.cell_cols, rule_report.cell_cols)
        np.testing.assert_array_equal(folded.cell_severity, rule_report.cell_severity)
        assert folded.to_dict() == rule_report.to_dict()

    def test_none_partials_contribute_rows_but_no_flags(self, preprocessor, ruleset):
        plan = ruleset.compile(preprocessor)
        matrix = preprocessor.compile().transform(make_eval_table())
        report = fold_rule_partials(
            [(0, 100, None), (100, matrix.shape[0], plan.evaluate(matrix))],
            ruleset,
            list(preprocessor.schema.names),
        )
        assert report.n_rows == 100 + matrix.shape[0]
        assert np.all(report.cell_rows >= 100)

    def test_fold_rejects_partials_from_a_different_rule_set(self, preprocessor, ruleset):
        plan = ruleset.compile(preprocessor)
        matrix = preprocessor.compile().transform(make_eval_table())
        partial = plan.evaluate(matrix)
        other = RuleSet(
            [Rule("other", parse_predicate({"type": "not_null", "column": "amount"}))]
        )
        with pytest.raises(ValidationError, match="unknown rule"):
            fold_rule_partials(
                [(0, matrix.shape[0], partial)], other, list(preprocessor.schema.names)
            )


# ---------------------------------------------------------------------------
# wire codecs
# ---------------------------------------------------------------------------
class TestWire:
    def test_rule_report_roundtrips_bit_exactly(self, rule_report):
        payload = json.loads(json.dumps(rule_report.to_dict()))
        again = RuleReport.from_dict(payload)
        assert again.to_dict() == rule_report.to_dict()
        np.testing.assert_array_equal(again.cell_rows, rule_report.cell_rows)
        np.testing.assert_array_equal(again.cell_severity, rule_report.cell_severity)

    def test_rule_partial_roundtrips_bit_exactly(self, preprocessor, ruleset):
        plan = ruleset.compile(preprocessor)
        partial = plan.evaluate(preprocessor.compile().transform(make_eval_table()))
        again = RulePartial.from_payload(json.loads(json.dumps(partial.to_payload())))
        assert again.to_payload() == partial.to_payload()

    def test_generic_protocol_dispatch_routes_rule_kinds(self, ruleset, rule_report):
        decoded_set = protocol.from_dict(json.loads(json.dumps(ruleset.to_dict())))
        assert decoded_set == ruleset
        decoded_report = protocol.from_dict(json.loads(json.dumps(rule_report.to_dict())))
        assert decoded_report.to_dict() == rule_report.to_dict()


# ---------------------------------------------------------------------------
# fusion into ValidationReport — additive, GNN flags untouched
# ---------------------------------------------------------------------------
def demo_clean(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


DEMO_RULES = {
    "name": "demo-checks",
    "rules": [
        {"id": "x-range", "severity": "error",
         "predicate": {"type": "range", "column": "x", "min": 0.0, "max": 1.0}},
        {"id": "z-present", "severity": "warn",
         "predicate": {"type": "not_null", "column": "z"}},
        {"id": "c-known", "severity": "error",
         "predicate": {"type": "in_set", "column": "c", "values": ["lo", "hi"]}},
    ],
}


def demo_dirty(n: int = 400, seed: int = 7) -> Table:
    table = demo_clean(n, seed)
    x = np.array(table.column("x"), dtype=np.float64)
    z = np.array(table.column("z"), dtype=np.float64)
    c = np.array(table.column("c"), dtype=object)
    x[::37] = 5.0        # out of the [0, 1] rule range
    z[::41] = np.nan     # missing
    c[::43] = "??"       # unknown category
    return table.with_column("x", x).with_column("z", z).with_column("c", c)


@pytest.fixture(scope="module")
def pipeline() -> DQuaG:
    config = DQuaGConfig(hidden_dim=8, epochs=2, batch_size=64)
    return DQuaG(config).fit(demo_clean(300, seed=0), rng=0)


class TestFusion:
    def test_rules_off_report_has_no_rule_report_and_no_wire_key(self, pipeline):
        report = pipeline.validate(demo_dirty())
        assert report.rule_report is None
        assert "rule_report" not in protocol.report_to_dict(report, errors="dense")
        np.testing.assert_array_equal(report.combined_cell_flags, report.cell_flags)
        assert report.provenance_counts() == {
            "model": int(report.cell_flags.sum()), "rule": 0, "both": 0
        }

    def test_rules_leave_gnn_fields_bit_identical(self, pipeline):
        table = demo_dirty()
        plain = pipeline.validate(table)
        fused = pipeline.validate(table, rules=DEMO_RULES)
        np.testing.assert_array_equal(fused.sample_errors, plain.sample_errors)
        np.testing.assert_array_equal(fused.cell_errors, plain.cell_errors)
        np.testing.assert_array_equal(fused.row_flags, plain.row_flags)
        np.testing.assert_array_equal(fused.cell_flags, plain.cell_flags)
        assert fused.threshold == plain.threshold
        assert fused.is_problematic == plain.is_problematic
        assert fused.rule_report is not None
        assert fused.rule_report.n_cells > 0

    def test_provenance_distinguishes_model_rule_and_both(self, pipeline):
        table = demo_dirty()
        fused = pipeline.validate(table, rules=DEMO_RULES)
        rule_mask = fused.rule_report.cell_mask()
        np.testing.assert_array_equal(
            fused.combined_cell_flags, fused.cell_flags | rule_mask
        )
        counts = fused.provenance_counts()
        assert counts["rule"] > 0
        assert counts["model"] + counts["rule"] + counts["both"] == int(
            fused.combined_cell_flags.sum()
        )
        rule_only = rule_mask & ~fused.cell_flags
        row, col = map(int, np.argwhere(rule_only)[0])
        assert fused.cell_provenance(row, col) == "rule"
        clean_cell = np.argwhere(~fused.combined_cell_flags)
        row, col = map(int, clean_cell[0])
        assert fused.cell_provenance(row, col) is None
        assert "rules:" in fused.summary()

    def test_fused_report_roundtrips_on_both_wire_tiers(self, pipeline):
        from repro.api import framing

        fused = pipeline.validate(demo_dirty(), rules=DEMO_RULES)
        payload = json.loads(json.dumps(protocol.report_to_dict(fused, errors="dense")))
        decoded = protocol.report_from_dict(payload)
        assert decoded.rule_report is not None
        assert decoded.rule_report.to_dict() == fused.rule_report.to_dict()
        framed = framing.report_from_frame(
            framing.decode_frame(framing.report_to_frame(fused, errors="dense"))
        )
        assert framed.rule_report is not None
        assert framed.rule_report.to_dict() == fused.rule_report.to_dict()

    def test_streaming_matches_one_shot_with_rules(self, pipeline):
        table = demo_dirty()
        fused = pipeline.validate(table, rules=DEMO_RULES)
        streamed = pipeline.streaming_validator(
            chunk_size=64, keep_cell_errors=True, rules=DEMO_RULES
        ).validate_table(table)
        assert streamed.rule_report is not None
        assert streamed.rule_report.to_dict() == fused.rule_report.to_dict()
        np.testing.assert_array_equal(streamed.cell_flags, fused.cell_flags)

    def test_stream_summary_carries_and_roundtrips_the_rule_report(self, pipeline):
        table = demo_dirty()
        summary = pipeline.streaming_validator(
            chunk_size=64, rules=DEMO_RULES
        ).validate_table(table)
        assert summary.rule_report is not None
        assert "rules:" in summary.summary()
        payload = json.loads(json.dumps(protocol.stream_summary_to_dict(summary)))
        decoded = protocol.stream_summary_from_dict(payload)
        assert decoded.rule_report.to_dict() == summary.rule_report.to_dict()
        plain = pipeline.streaming_validator(chunk_size=64).validate_table(table)
        assert plain.rule_report is None
        assert "rule_report" not in protocol.stream_summary_to_dict(plain)


# ---------------------------------------------------------------------------
# service-level registration: generation tagging, persistence, eager compile
# ---------------------------------------------------------------------------
class TestService:
    @pytest.fixture()
    def service(self, pipeline):
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", pipeline)
        yield service
        service.close()

    def test_set_get_clear_lifecycle(self, service, pipeline):
        assert service.get_rules("demo") is None
        assert service.rule_plan_for("demo") is None
        assert service.clear_rules("demo") is False
        service.set_rules("demo", DEMO_RULES)
        assert service.get_rules("demo") == RuleSet.from_payload(DEMO_RULES)
        plan = service.rule_plan_for("demo")
        assert plan is not None
        assert service.rule_plan_for("demo") is plan  # cached
        assert service.clear_rules("demo") is True
        assert service.rule_plan_for("demo") is None

    def test_validate_fuses_rules_and_detach_restores_plain_output(self, service, pipeline):
        table = demo_dirty()
        plain = service.validate("demo", table)
        service.set_rules("demo", DEMO_RULES)
        fused = service.validate("demo", table)
        assert fused.rule_report is not None
        np.testing.assert_array_equal(fused.cell_flags, plain.cell_flags)
        reference = pipeline.validate(table, rules=DEMO_RULES)
        assert fused.rule_report.to_dict() == reference.rule_report.to_dict()
        service.clear_rules("demo")
        assert service.validate("demo", table).rule_report is None

    def test_incompatible_rules_fail_at_registration_not_validation(self, service):
        bad = {"rules": [{"id": "ghost", "predicate": {"type": "not_null", "column": "ghost"}}]}
        with pytest.raises(RuleConfigError, match="unknown column"):
            service.set_rules("demo", bad)
        assert service.get_rules("demo") is None
        # the failed registration left validation rules-off
        assert service.validate("demo", demo_dirty()).rule_report is None

    def test_set_rules_requires_a_rule_set(self, service):
        with pytest.raises(ReproError, match="requires a rule set"):
            service.set_rules("demo", None)

    def test_rules_survive_re_registration_and_recompile(self, service, pipeline):
        service.set_rules("demo", DEMO_RULES)
        stale_plan = service.rule_plan_for("demo")
        fresh = DQuaG(DQuaGConfig(hidden_dim=8, epochs=2, batch_size=64)).fit(
            demo_clean(300, seed=1), rng=1
        )
        service.add("demo", fresh)  # generation bump
        assert service.get_rules("demo") == RuleSet.from_payload(DEMO_RULES)
        rebuilt = service.rule_plan_for("demo")
        assert rebuilt is not None and rebuilt is not stale_plan
        assert service.validate("demo", demo_dirty()).rule_report is not None

    def test_rules_load_from_a_json_file(self, service, tmp_path):
        path = tmp_path / "demo_rules.json"
        path.write_text(json.dumps(DEMO_RULES))
        service.set_rules("demo", path)
        assert service.get_rules("demo") == RuleSet.from_payload(DEMO_RULES)


# ---------------------------------------------------------------------------
# gateway endpoints + hostile inputs + client retry guard
# ---------------------------------------------------------------------------
class TestGateway:
    @pytest.fixture(scope="class")
    def gateway(self, pipeline):
        service = ValidationService(capacity=2, shard_workers=0)
        service.add("demo", pipeline)
        with ValidationGateway(service, port=0) as gw:
            yield gw
        service.close()

    @pytest.fixture(scope="class")
    def client(self, gateway):
        return Client(port=gateway.port)

    @pytest.fixture(autouse=True)
    def detach_rules(self, gateway):
        yield
        gateway.service.clear_rules("demo")

    def raw_request(self, gateway, method: str, path: str, body: bytes,
                    content_type: str = "application/json"):
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=30)
        try:
            connection.request(method, path, body=body,
                               headers={"Content-Type": content_type})
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def test_put_get_delete_roundtrip(self, client):
        stored = client.set_rules("demo", DEMO_RULES)
        assert stored == RuleSet.from_payload(DEMO_RULES)
        assert client.get_rules("demo") == stored
        assert client.delete_rules("demo") is True
        assert client.get_rules("demo") is None
        assert client.delete_rules("demo") is False

    def test_validate_fuses_rules_identically_on_both_tiers(self, client, gateway, pipeline):
        client.set_rules("demo", DEMO_RULES)
        table = demo_dirty()
        reference = pipeline.validate(table, rules=DEMO_RULES)
        via_json = client.validate("demo", table, include_errors=True)
        assert via_json.rule_report is not None
        assert via_json.rule_report.to_dict() == reference.rule_report.to_dict()
        framed = Client(port=gateway.port, wire="frame").validate(
            "demo", table, include_errors=True
        )
        assert framed.rule_report is not None
        assert framed.rule_report.to_dict() == reference.rule_report.to_dict()

    def test_validate_stream_fuses_rules(self, client, pipeline):
        client.set_rules("demo", DEMO_RULES)
        table = demo_dirty()
        chunks = [table.slice_rows(i, i + 64) for i in range(0, table.n_rows, 64)]
        summary = client.validate_stream("demo", chunks)
        local = pipeline.streaming_validator(
            chunk_size=64, rules=DEMO_RULES
        ).validate_table(table)
        assert summary.rule_report is not None
        assert summary.rule_report.to_dict() == local.rule_report.to_dict()

    def test_incompatible_rules_come_back_as_422(self, client):
        bad = {"rules": [{"id": "ghost",
                          "predicate": {"type": "not_null", "column": "ghost"}}]}
        with pytest.raises(GatewayError, match="unknown column") as excinfo:
            client.set_rules("demo", bad)
        assert excinfo.value.status == 422
        assert client.get_rules("demo") is None

    def test_failed_update_preserves_the_previous_rules(self, client):
        client.set_rules("demo", DEMO_RULES)
        bad = {"rules": [{"id": "ghost",
                          "predicate": {"type": "not_null", "column": "ghost"}}]}
        with pytest.raises(GatewayError):
            client.set_rules("demo", bad)
        assert client.get_rules("demo") == RuleSet.from_payload(DEMO_RULES)

    def test_parse_level_errors_fail_client_side_before_any_http(self, client):
        # Structural errors don't need the server: resolve_ruleset raises
        # locally, so a typo never even reaches the gateway.
        with pytest.raises(RuleConfigError, match="unknown predicate type"):
            client.set_rules("demo", {"rules": [
                {"id": "r", "predicate": {"type": "no_such", "column": "x"}}
            ]})

    def test_malformed_json_body_is_a_400(self, gateway):
        status, body = self.raw_request(
            gateway, "PUT", "/v1/pipelines/demo/rules", b"{not json"
        )
        assert status == 400

    @pytest.mark.parametrize(
        "payload",
        [
            {"rules": [{"id": "r", "severity": "fatal",
                        "predicate": {"type": "not_null", "column": "x"}}]},
            {"rules": [{"id": "dup", "predicate": {"type": "not_null", "column": "x"}},
                       {"id": "dup", "predicate": {"type": "not_null", "column": "y"}}]},
            {"rules": [{"id": "r",
                        "predicate": {"type": "range", "column": "x", "min": 9, "max": 1}}]},
        ],
    )
    def test_structurally_invalid_rule_documents_are_422(self, gateway, payload):
        status, body = self.raw_request(
            gateway, "PUT", "/v1/pipelines/demo/rules",
            json.dumps(payload).encode("utf-8"),
        )
        assert status == 422, body

    def test_rules_on_an_unknown_pipeline_is_a_404(self, gateway):
        status, _ = self.raw_request(
            gateway, "PUT", "/v1/pipelines/nope/rules",
            json.dumps(DEMO_RULES).encode("utf-8"),
        )
        assert status == 404

    def test_retry_guard_retries_503_exactly_once(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise GatewayError("gateway error 503: pool closed", status=503)
            return "ok"

        assert Client._retry_once_on_503(flaky) == "ok"
        assert calls["n"] == 2

    def test_retry_guard_gives_up_after_the_second_503(self):
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise GatewayError("gateway error 503: pool closed", status=503)

        with pytest.raises(GatewayError):
            Client._retry_once_on_503(dead)
        assert calls["n"] == 2

    @pytest.mark.parametrize("status", [400, 404, 422, 500])
    def test_retry_guard_never_retries_deterministic_failures(self, status):
        calls = {"n": 0}

        def deterministic():
            calls["n"] += 1
            raise GatewayError(f"gateway error {status}: nope", status=status)

        with pytest.raises(GatewayError):
            Client._retry_once_on_503(deterministic)
        assert calls["n"] == 1


# ---------------------------------------------------------------------------
# repro-serve --rules plumbing + the rules-only baseline
# ---------------------------------------------------------------------------
class TestCliAndBaseline:
    def test_serve_cli_rejects_rules_for_unknown_pipelines(self, pipeline, tmp_path):
        from repro.serve.cli import main

        archive = tmp_path / "demo.npz"
        pipeline.save(archive)
        rules_file = tmp_path / "rules.json"
        rules_file.write_text(json.dumps(DEMO_RULES))
        with pytest.raises(SystemExit):
            main(["--pipeline", f"demo={archive}", "--rules", f"ghost={rules_file}"])

    def test_serve_cli_fails_startup_on_an_incompatible_rules_file(self, pipeline, tmp_path, capsys):
        from repro.serve.cli import main

        archive = tmp_path / "demo.npz"
        pipeline.save(archive)
        rules_file = tmp_path / "bad_rules.json"
        rules_file.write_text(json.dumps(
            {"rules": [{"id": "ghost",
                        "predicate": {"type": "not_null", "column": "ghost"}}]}
        ))
        assert main(["--pipeline", f"demo={archive}", "--rules", str(rules_file)]) == 1
        assert "unknown column" in capsys.readouterr().err

    def test_rules_baseline_flags_rule_violating_rows(self):
        from repro.baselines import RuleSetValidator

        validator = RuleSetValidator(DEMO_RULES, problem_fraction=0.01)
        validator.fit(demo_clean(300, seed=0))
        verdict = validator.validate_batch(demo_dirty())
        assert verdict.is_problematic
        assert len(verdict.flagged_rows) > 0
        assert set(verdict.details["by_severity"]) == set(SEVERITIES)
        clean = validator.validate_batch(demo_clean(200, seed=3))
        assert not clean.is_problematic
        assert len(clean.flagged_rows) == 0
