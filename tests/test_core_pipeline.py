"""Integration tests for the end-to-end DQuaG pipeline.

A small synthetic dataset with a strong feature dependency is used so a
tiny model (few epochs, small hidden dim) trains in seconds while still
demonstrating detection, cell localization, and repair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.errors import MissingValueInjector, NumericAnomalyInjector, RowRuleConflictInjector
from repro.exceptions import NotFittedError, SchemaError


def make_dependent_table(n: int, seed: int) -> Table:
    """x, y = 2x, z = 1-x, plus a category determined by x."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "sign of x - 0.5", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


@pytest.fixture(scope="module")
def fitted() -> tuple[DQuaG, Table]:
    train = make_dependent_table(600, seed=0)
    calib = make_dependent_table(800, seed=1)
    config = DQuaGConfig(hidden_dim=24, epochs=30, batch_size=32, feature_embedding_dim=4)
    pipeline = DQuaG(config).fit(train, rng=0, calibration_table=calib)
    # A holdout large enough that the 6% dataset cutoff sits ~2σ above
    # the expected 5% clean flag rate (binomial noise shrinks with n).
    holdout = make_dependent_table(1500, seed=2)
    return pipeline, holdout


class TestFitValidate:
    def test_unfitted_raises(self):
        pipeline = DQuaG(DQuaGConfig(hidden_dim=8, epochs=1))
        with pytest.raises(NotFittedError):
            pipeline.validate(make_dependent_table(10, seed=3))

    def test_clean_holdout_not_problematic(self, fitted):
        pipeline, holdout = fitted
        report = pipeline.validate(holdout)
        assert not report.is_problematic
        assert report.flagged_fraction < 0.10

    def test_anomalies_detected(self, fitted):
        pipeline, holdout = fitted
        dirty, truth = NumericAnomalyInjector(["y"], fraction=0.2).inject(holdout, rng=5)
        report = pipeline.validate(dirty)
        assert report.is_problematic
        # Most corrupted rows are flagged.
        flagged = set(report.flagged_rows.tolist())
        dirty_rows = set(np.flatnonzero(truth.row_mask).tolist())
        recall = len(flagged & dirty_rows) / len(dirty_rows)
        assert recall > 0.9

    def test_missing_detected(self, fitted):
        pipeline, holdout = fitted
        dirty, _ = MissingValueInjector(["z"], fraction=0.2).inject(holdout, rng=6)
        assert pipeline.validate(dirty).is_problematic

    def test_hidden_conflict_detected(self, fitted):
        pipeline, holdout = fitted
        # Values stay in-range individually; the (x, c) pair becomes wrong.
        injector = RowRuleConflictInjector(
            transform=lambda row, rng: {"c": "lo" if row["c"] == "hi" else "hi"},
            touched_columns=["c"],
            fraction=0.3,
        )
        dirty, _ = injector.inject(holdout, rng=7)
        assert pipeline.validate(dirty).is_problematic

    def test_cell_localization(self, fitted):
        pipeline, holdout = fitted
        dirty, truth = NumericAnomalyInjector(["y"], fraction=0.2).inject(holdout, rng=8)
        report = pipeline.validate(dirty)
        y_index = holdout.schema.index_of("y")
        flagged_cells = report.cell_flags
        # Of the cells flagged in column y, most are truly corrupted.
        hits = flagged_cells[:, y_index] & truth.cell_mask[:, y_index]
        assert hits.sum() >= 0.7 * flagged_cells[:, y_index].sum() > 0

    def test_flagged_features_of(self, fitted):
        pipeline, holdout = fitted
        dirty, truth = NumericAnomalyInjector(["y"], fraction=0.3).inject(holdout, rng=9)
        report = pipeline.validate(dirty)
        some_dirty_row = int(np.flatnonzero(truth.row_mask & report.row_flags)[0])
        assert "y" in report.flagged_features_of(some_dirty_row)

    def test_schema_mismatch_rejected(self, fitted):
        pipeline, holdout = fitted
        with pytest.raises(SchemaError):
            pipeline.validate(holdout.select(["x", "y"]))

    def test_validate_batch_interface(self, fitted):
        pipeline, holdout = fitted
        verdict = pipeline.validate_batch(holdout.sample(500, rng=1))
        assert not verdict.is_problematic
        assert verdict.score < 0.10
        assert "threshold" in verdict.details

    def test_validate_batch_summary_is_structured(self, fitted):
        # details["summary"] is the JSON-ready protocol dict, not a
        # pre-rendered string; summary() renders it for humans.
        import json

        pipeline, holdout = fitted
        verdict = pipeline.validate_batch(holdout.sample(500, rng=1))
        summary = verdict.details["summary"]
        assert isinstance(summary, dict)
        assert summary["kind"] == "verdict_summary"
        assert summary["n_rows"] == 500
        assert summary["is_problematic"] == verdict.is_problematic
        json.dumps(summary)  # must be JSON-native as-is
        assert "rows flagged" in verdict.summary()


class TestRepair:
    def test_repair_reduces_flagged_fraction(self, fitted):
        pipeline, holdout = fitted
        dirty, _ = NumericAnomalyInjector(["y"], fraction=0.2).inject(holdout, rng=11)
        report = pipeline.validate(dirty)
        repaired, summary = pipeline.repair(dirty, report, iterations=2)
        after = pipeline.validate(repaired)
        assert after.flagged_fraction < report.flagged_fraction / 2
        assert summary.n_cells_repaired > 0

    def test_repaired_numeric_values_plausible(self, fitted):
        pipeline, holdout = fitted
        dirty, truth = NumericAnomalyInjector(["y"], fraction=0.2).inject(holdout, rng=12)
        report = pipeline.validate(dirty)
        repaired, _ = pipeline.repair(dirty, report)
        rows = np.flatnonzero(truth.cell_mask[:, holdout.schema.index_of("y")] & report.row_flags)
        # Repaired y should approximate the true relationship y = 2x.
        expected = 2.0 * repaired["x"][rows]
        errors = np.abs(repaired["y"][rows] - expected)
        assert np.median(errors) < 0.25

    def test_missing_cells_always_repaired(self, fitted):
        pipeline, holdout = fitted
        dirty, _ = MissingValueInjector(["z"], fraction=0.2).inject(holdout, rng=13)
        report = pipeline.validate(dirty)
        repaired, _ = pipeline.repair(dirty, report)
        assert not np.isnan(repaired["z"]).any()

    def test_untouched_cells_preserved_exactly(self, fitted):
        pipeline, holdout = fitted
        dirty, _ = NumericAnomalyInjector(["y"], fraction=0.1).inject(holdout, rng=14)
        report = pipeline.validate(dirty)
        repaired, _ = pipeline.repair(dirty, report)
        untouched = ~(report.cell_flags[:, holdout.schema.index_of("x")])
        np.testing.assert_array_equal(repaired["x"][untouched], dirty["x"][untouched])

    def test_invalid_iterations(self, fitted):
        pipeline, holdout = fitted
        with pytest.raises(ValueError):
            pipeline.repair(holdout, iterations=0)


class TestPersistence:
    def test_save_load_roundtrip(self, fitted, tmp_path):
        pipeline, holdout = fitted
        path = tmp_path / "dquag.npz"
        pipeline.save(path)

        train = make_dependent_table(600, seed=0)
        clone = DQuaG().load_weights(path, train)
        original = pipeline.validate(holdout)
        restored = clone.validate(holdout)
        np.testing.assert_allclose(original.sample_errors, restored.sample_errors)
        assert restored.threshold == original.threshold

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            DQuaG().save(tmp_path / "x.npz")

    def test_graph2vec_roundtrip_exact(self, tmp_path):
        # Regression: the graph2vec projection is not trained, but it must
        # survive (de)serialization — a reloaded pipeline with a different
        # projection silently invalidates its calibration.
        train = make_dependent_table(400, seed=0)
        config = DQuaGConfig(architecture="graph2vec", hidden_dim=16, epochs=4)
        pipeline = DQuaG(config).fit(train, rng=0)
        path = tmp_path / "g2v.npz"
        pipeline.save(path)
        clone = DQuaG().load_weights(path, train)
        holdout = make_dependent_table(200, seed=1)
        np.testing.assert_allclose(
            pipeline.validate(holdout).sample_errors,
            clone.validate(holdout).sample_errors,
        )
