"""Differential fuzzing: every execution path produces the same report.

A seeded generator drives random tables through paper-style corruptions
(:mod:`repro.errors`) and asserts that the one-shot path, the streaming
path, sharded execution (2 and 4 shards), and the full HTTP round-trip —
over both the JSON tier and the binary frame tier
(``application/x-repro-frame``), one-shot and streamed — all produce
**bit-identical** :class:`ValidationReport` objects — the invariant that
makes every future refactor of the serving stack safe.
The compiled preprocessing plan (:class:`repro.data.plan.TransformPlan`)
is additionally pinned bit-identical to the legacy per-value
``TablePreprocessor.transform`` on every scenario.

Pool spawns are expensive, so the sharded paths share one module-scoped
2-worker executor; shard-count parity (2 vs 4) is a planner claim, not
a pool-size claim.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.core.validator import ValidationReport
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.errors import (
    CompositeInjector,
    MissingValueInjector,
    NumericAnomalyInjector,
    StringTypoInjector,
)
from repro.runtime import ParallelValidator, ValidationService
from repro.serve import AsyncGateway, Client, ValidationGateway

N_SCENARIOS = 20

#: streaming chunk size — a divisor relationship with the engine's
#: internal chunk is *not* required for parity (the kernels are
#: row-local), but a small chunk forces real multi-chunk merges
CHUNK_SIZE = 256


def make_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )


def make_clean(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    return Table(
        make_schema(),
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def make_scenario(index: int) -> Table:
    """One seeded random table + a seeded random corruption."""
    rng = np.random.default_rng(10_000 + index)
    n_rows = int(rng.integers(300, 1200))
    table = make_clean(n_rows, seed=20_000 + index)
    fraction = float(rng.uniform(0.05, 0.3))
    injectors = [
        None,  # in-distribution: the paths must also agree on clean data
        NumericAnomalyInjector(columns=["y"], fraction=fraction),
        MissingValueInjector(columns=["z"], fraction=fraction),
        StringTypoInjector(columns=["c"], fraction=fraction),
        CompositeInjector(
            [
                NumericAnomalyInjector(columns=["x"], fraction=fraction / 2),
                MissingValueInjector(columns=["y"], fraction=fraction / 2),
            ]
        ),
    ]
    injector = injectors[index % len(injectors)]
    if injector is None:
        return table
    dirty, _ = injector.inject(table, rng=30_000 + index)
    return dirty


@pytest.fixture(scope="module")
def fitted() -> DQuaG:
    config = DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)
    return DQuaG(config).fit(make_clean(500, seed=0), rng=0)


@pytest.fixture(scope="module")
def parallel(fitted):
    with ParallelValidator.from_pipeline(
        fitted, workers=2, chunk_size=CHUNK_SIZE
    ) as validator:
        yield validator


@pytest.fixture(scope="module")
def shm_parallel(fitted):
    """Sharded validation forced through the shared-memory data plane."""
    with ParallelValidator.from_pipeline(
        fitted, workers=2, chunk_size=CHUNK_SIZE, use_shm=True
    ) as validator:
        yield validator


@pytest.fixture(scope="module")
def pickled_parallel(fitted):
    """Sharded validation forced onto the pickled fan-out path."""
    with ParallelValidator.from_pipeline(
        fitted, workers=2, chunk_size=CHUNK_SIZE, use_shm=False
    ) as validator:
        yield validator


@pytest.fixture(scope="module")
def served(fitted):
    service = ValidationService(capacity=2, shard_workers=0)
    service.add("demo", fitted)
    with ValidationGateway(service, port=0) as gateway:
        yield Client(port=gateway.port)
    service.close()


@pytest.fixture(scope="module")
def frame_client(served):
    """A client pinned to the binary frame tier, against the same gateway."""
    return Client(port=served.port, wire="frame")


def assert_reports_identical(reference: ValidationReport, other: ValidationReport, path: str):
    __tracebackhide__ = True
    np.testing.assert_array_equal(
        other.sample_errors, reference.sample_errors, err_msg=f"{path}: sample_errors"
    )
    np.testing.assert_array_equal(
        other.cell_errors, reference.cell_errors, err_msg=f"{path}: cell_errors"
    )
    np.testing.assert_array_equal(
        other.row_flags, reference.row_flags, err_msg=f"{path}: row_flags"
    )
    np.testing.assert_array_equal(
        other.cell_flags, reference.cell_flags, err_msg=f"{path}: cell_flags"
    )
    assert other.sample_errors.dtype == reference.sample_errors.dtype, path
    assert other.cell_errors.dtype == reference.cell_errors.dtype, path
    assert other.threshold == reference.threshold, path
    assert other.flagged_fraction == reference.flagged_fraction, path
    assert other.is_problematic == reference.is_problematic, path
    assert other.feature_names == reference.feature_names, path


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_compiled_plan_bit_identical_to_legacy_transform(index, fitted):
    """The compiled TransformPlan must reproduce the legacy per-value
    transform bit for bit on every corruption scenario — the invariant
    that keeps reports, goldens, and calibrated thresholds untouched."""
    table = make_scenario(index)
    preprocessor = fitted.preprocessor
    legacy = preprocessor.transform(table)
    plan = preprocessor.compile()

    compiled = plan.transform(table)
    assert compiled.dtype == legacy.dtype
    np.testing.assert_array_equal(compiled, legacy, err_msg="plan.transform")

    # Chunked execution into one reused buffer covers transform_into.
    streamed = np.empty_like(legacy)
    for start in range(0, table.n_rows, CHUNK_SIZE):
        stop = min(start + CHUNK_SIZE, table.n_rows)
        chunk = plan.transform_into(table, streamed[start:stop], start, stop)
        assert chunk.shape == (stop - start, len(table.schema.names))
    np.testing.assert_array_equal(streamed, legacy, err_msg="plan.transform_into")

    # The public chunk iterator (zero-copy slices, fresh outputs).
    chunked = np.concatenate(
        list(preprocessor.transform_chunks(table, CHUNK_SIZE)), axis=0
    )
    np.testing.assert_array_equal(chunked, legacy, err_msg="transform_chunks")


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_all_paths_bit_identical(index, fitted, parallel, served):
    table = make_scenario(index)
    reference = fitted.validate(table)

    streamed = fitted.streaming_validator(
        chunk_size=CHUNK_SIZE, keep_cell_errors=True
    ).validate_table(table)
    assert_reports_identical(reference, streamed, "streaming")

    for shards in (2, 4):
        sharded = parallel.validate_table(table, shards=shards, keep_cell_errors=True)
        assert_reports_identical(reference, sharded, f"sharded[{shards}]")

    remote = served.validate("demo", table, include_errors=True)
    assert_reports_identical(reference, remote, "http")

    # The wire protocol itself must be exact: a JSON round-trip of the
    # reference decodes to the same report, bit for bit.
    decoded = ValidationReport.from_dict(json.loads(json.dumps(reference.to_dict())))
    assert_reports_identical(reference, decoded, "json-round-trip")


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_shm_data_plane_bit_identical(index, fitted, shm_parallel, pickled_parallel):
    """shm == pickled == one-shot, on every corruption scenario.

    The shared-memory data plane replaces the shard transport (slab
    windows instead of pickled rows) without touching the compute — so
    its reports must match the pickled fan-out and the one-shot
    reference bit for bit, and the counters must prove the slab path
    actually ran rather than silently falling back.
    """
    from repro.runtime.shm import shm_available

    if not shm_available():
        pytest.skip("POSIX shared memory unavailable on this platform")
    table = make_scenario(index)
    reference = fitted.validate(table)

    before = shm_parallel.shm_stats["shm_tables"]
    via_shm = shm_parallel.validate_table(table, shards=2, keep_cell_errors=True)
    assert shm_parallel.shm_stats["shm_tables"] == before + 1, "shm path did not run"
    via_pickled = pickled_parallel.validate_table(table, shards=2, keep_cell_errors=True)
    assert pickled_parallel.shm_stats["shm_tables"] == 0

    assert_reports_identical(reference, via_shm, "shm")
    assert_reports_identical(via_pickled, via_shm, "shm-vs-pickled")

    if index % 5 == 0:  # streamed parity is slower: sample the scenarios
        chunks = [
            table.slice_rows(start, start + CHUNK_SIZE)
            for start in range(0, table.n_rows, CHUNK_SIZE)
        ]
        shards_before = shm_parallel.shm_stats["shm_stream_shards"]
        shm_summary = shm_parallel.validate_stream(iter(chunks))
        assert shm_parallel.shm_stats["shm_stream_shards"] > shards_before
        pickled_summary = pickled_parallel.validate_stream(iter(chunks))
        assert shm_summary.to_dict() == pickled_summary.to_dict(), "shm stream parity"


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_frame_tier_bit_identical(index, fitted, served, frame_client):
    """HTTP over binary frames must equal the JSON tier and in-process.

    One-shot: the framed request/response round-trip (typed column
    buffers both ways) reconstructs the in-process dense report bit for
    bit. Streamed: a frame-chunked upload folds to the exact same
    StreamSummary dict as the NDJSON upload of the same chunks.
    """
    table = make_scenario(index)
    reference = fitted.validate(table)

    framed = frame_client.validate("demo", table, include_errors=True)
    assert_reports_identical(reference, framed, "http-frame")

    via_json = served.validate("demo", table, include_errors=True)
    assert_reports_identical(via_json, framed, "http-frame-vs-json")

    # The frame codec round-trip alone must also be exact.
    from repro.api import framing

    codec = framing.report_from_frame(
        framing.decode_frame(framing.report_to_frame(reference, errors="dense"))
    )
    assert_reports_identical(reference, codec, "frame-round-trip")

    if index % 5 == 0:  # streamed parity is slower: sample the scenarios
        chunks = [
            table.slice_rows(start, start + CHUNK_SIZE)
            for start in range(0, table.n_rows, CHUNK_SIZE)
        ]
        over_frames = frame_client.validate_stream("demo", chunks)
        over_ndjson = served.validate_stream("demo", chunks)
        assert over_frames.to_dict() == over_ndjson.to_dict(), "stream frame-vs-json"
        local = fitted.streaming_validator(chunk_size=CHUNK_SIZE).validate_table(table)
        assert over_frames.n_flagged == local.n_flagged
        np.testing.assert_array_equal(over_frames.flagged_rows, local.flagged_rows)
        assert over_frames.flagged_fraction == local.flagged_fraction
        assert over_frames.is_problematic == local.is_problematic


#: declarative rules for the scenario schema — every predicate scope is
#: represented, including a table-scoped ``unique`` whose fold defers
#: per-chunk values (the hardest case for shard/stream parity)
RULES_DOC = {
    "name": "differential-checks",
    "rules": [
        {"id": "x-range", "severity": "error",
         "predicate": {"type": "range", "column": "x", "min": 0.0, "max": 1.0}},
        {"id": "y-range", "severity": "warn",
         "predicate": {"type": "range", "column": "y", "min": -0.5, "max": 2.5}},
        {"id": "z-present", "severity": "warn",
         "predicate": {"type": "not_null", "column": "z"}},
        {"id": "c-known", "severity": "error",
         "predicate": {"type": "in_set", "column": "c", "values": ["lo", "hi"]}},
        {"id": "y-above-x", "severity": "info",
         "predicate": {"type": "compare", "left": "y", "op": "ge", "right": "x"}},
        {"id": "hi-band", "severity": "info",
         "predicate": {"type": "conditional",
                       "when": {"type": "in_set", "column": "c", "values": ["hi"]},
                       "then": {"type": "range", "column": "x", "min": 0.25}}},
        {"id": "x-unique", "severity": "info",
         "predicate": {"type": "unique", "column": "x"}},
    ],
}


@pytest.fixture(scope="module")
def demo_rules():
    from repro.rules import RuleSet

    return RuleSet.from_payload(RULES_DOC)


@pytest.fixture(scope="module")
def served_rules(fitted, demo_rules):
    """A second gateway with rules attached, so the rules-off gateway
    fixtures above keep exercising the unchanged legacy behavior."""
    service = ValidationService(capacity=2, shard_workers=0)
    service.add("demo", fitted)
    service.set_rules("demo", demo_rules)
    with ValidationGateway(service, port=0) as gateway:
        yield Client(port=gateway.port)
    service.close()


@pytest.fixture(scope="module")
def frame_rules_client(served_rules):
    return Client(port=served_rules.port, wire="frame")


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_rules_on_all_paths_bit_identical(
    index, fitted, parallel, demo_rules, served_rules, frame_rules_client
):
    """With rules on, every path must agree bit for bit — on the GNN
    fields (which must match the rules-off output exactly: fusion is
    additive) *and* on the fused rule report."""
    table = make_scenario(index)
    plain = fitted.validate(table)
    assert plain.rule_report is None  # rules-off output is untouched
    fused = fitted.validate(table, rules=demo_rules)
    assert_reports_identical(plain, fused, "rules-on-gnn-fields")
    assert fused.rule_report is not None
    reference = fused.rule_report.to_dict()

    streamed = fitted.streaming_validator(
        chunk_size=CHUNK_SIZE, keep_cell_errors=True, rules=demo_rules
    ).validate_table(table)
    assert_reports_identical(fused, streamed, "rules-streaming")
    assert streamed.rule_report.to_dict() == reference, "rules-streaming"

    for shards in (2, 4):
        sharded = parallel.validate_table(
            table, shards=shards, keep_cell_errors=True, rules=demo_rules
        )
        assert_reports_identical(fused, sharded, f"rules-sharded[{shards}]")
        assert sharded.rule_report.to_dict() == reference, f"rules-sharded[{shards}]"

    remote = served_rules.validate("demo", table, include_errors=True)
    assert_reports_identical(fused, remote, "rules-http-json")
    assert remote.rule_report.to_dict() == reference, "rules-http-json"

    framed = frame_rules_client.validate("demo", table, include_errors=True)
    assert_reports_identical(fused, framed, "rules-http-frame")
    assert framed.rule_report.to_dict() == reference, "rules-http-frame"

    # JSON round-trip of the fused report is exact, rule report included.
    decoded = ValidationReport.from_dict(json.loads(json.dumps(fused.to_dict())))
    assert_reports_identical(fused, decoded, "rules-json-round-trip")
    assert decoded.rule_report.to_dict() == reference, "rules-json-round-trip"

    if index % 5 == 0:  # streamed-upload parity is slower: sample scenarios
        chunks = [
            table.slice_rows(start, start + CHUNK_SIZE)
            for start in range(0, table.n_rows, CHUNK_SIZE)
        ]
        over_json = served_rules.validate_stream("demo", chunks)
        over_frames = frame_rules_client.validate_stream("demo", chunks)
        local = fitted.streaming_validator(
            chunk_size=CHUNK_SIZE, rules=demo_rules
        ).validate_table(table)
        assert local.rule_report is not None
        assert over_json.to_dict() == over_frames.to_dict(), "rules-stream frame-vs-json"
        assert over_json.rule_report.to_dict() == local.rule_report.to_dict()
        assert over_json.rule_report.to_dict() == reference


def test_scenarios_cover_clean_and_problematic():
    """The seeded scenario mix must exercise both verdict branches."""
    tables = [make_scenario(i) for i in range(N_SCENARIOS)]
    missing = [t for t in tables if any(t.missing_fraction(n) > 0 for n in t.schema.names)]
    assert missing, "no scenario injected missing values"
    sizes = {t.n_rows for t in tables}
    assert len(sizes) > 5, "scenario sizes are not diverse"


@pytest.fixture(scope="module")
def async_served(fitted):
    """The asyncio gateway with an aggressive coalescing window: the
    concurrent sub-requests below must fuse into shared slabs."""
    service = ValidationService(capacity=2, shard_workers=0)
    service.add("demo", fitted)
    with AsyncGateway(service, port=0, batch_window_ms=20.0) as gateway:
        yield gateway, Client(port=gateway.port)
    service.close()


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_coalesced_verdicts_bit_identical_to_per_request(index, fitted, async_served):
    """Micro-batching must be invisible: each of four concurrently
    submitted sub-requests — two over JSON, two over frames — decodes to
    the exact report the in-process pipeline returns for that sub-table
    alone, even though the scheduler may have fused them into one slab
    (and the verdict, being a per-request fraction, would smear if the
    split were sloppy)."""
    from concurrent.futures import ThreadPoolExecutor

    gateway, client = async_served
    frame_client = Client(port=gateway.port, wire="frame")
    table = make_scenario(index)
    quarter = max(1, table.n_rows // 4)
    parts = [
        table.slice_rows(start, min(start + quarter, table.n_rows))
        for start in range(0, table.n_rows, quarter)
    ]
    references = [fitted.validate(part) for part in parts]
    clients = [client if i % 2 == 0 else frame_client for i in range(len(parts))]
    with ThreadPoolExecutor(max_workers=len(parts)) as pool:
        remotes = list(
            pool.map(
                lambda pair: pair[0].validate("demo", pair[1], include_errors=True),
                zip(clients, parts),
            )
        )
    for i, (reference, remote) in enumerate(zip(references, remotes)):
        tier = "json" if i % 2 == 0 else "frame"
        assert_reports_identical(reference, remote, f"coalesced[{i}:{tier}]")


def test_coalescing_actually_occurred(async_served):
    """Meta-check: across the scenario sweep above, at least some
    concurrent sub-requests must have shared a fused slab — otherwise
    the parity claim is vacuous."""
    gateway, _ = async_served
    stats = gateway.scheduler.stats_snapshot()
    if stats.completed < 8:
        pytest.skip("scenario sweep did not run in this selection")
    assert stats.batches < stats.completed
    assert stats.mean_batch_size > 1.0


def test_streamed_summary_agrees_with_report(fitted):
    """The bounded-memory fold reaches the same verdict as the dense path."""
    for index in range(0, N_SCENARIOS, 5):
        table = make_scenario(index)
        reference = fitted.validate(table)
        summary = fitted.streaming_validator(chunk_size=CHUNK_SIZE).validate_table(table)
        assert summary.n_rows == table.n_rows
        assert summary.n_flagged == reference.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, reference.flagged_rows)
        assert summary.is_problematic == reference.is_problematic
        assert summary.flagged_fraction == reference.flagged_fraction
