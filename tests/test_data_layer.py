"""Tests for schemas, tables, encoders, preprocessing, batching, and io."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ColumnKind,
    ColumnSpec,
    LabelEncoder,
    MinMaxNormalizer,
    Table,
    TablePreprocessor,
    TableSchema,
    iterate_minibatches,
    read_csv,
    sample_validation_batches,
    write_csv,
)
from repro.exceptions import NotFittedError, SchemaError


@pytest.fixture
def schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("age", ColumnKind.NUMERIC, "age in years"),
            ColumnSpec("income", ColumnKind.NUMERIC, "annual income"),
            ColumnSpec("city", ColumnKind.CATEGORICAL, "home city", categories=("paris", "london")),
        ]
    )


@pytest.fixture
def table(schema) -> Table:
    return Table(
        schema,
        {
            "age": np.array([25.0, 40.0, 31.0, np.nan]),
            "income": np.array([30e3, 80e3, 55e3, 42e3]),
            "city": ["paris", "london", "paris", None],
        },
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([ColumnSpec("x", "numeric"), ColumnSpec("x", "numeric")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", "weird")

    def test_numeric_with_categories_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", "numeric", categories=("a",))

    def test_kind_partitions(self, schema):
        assert schema.numeric_names == ["age", "income"]
        assert schema.categorical_names == ["city"]

    def test_index_of(self, schema):
        assert schema.index_of("income") == 1
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_subset_preserves_specs(self, schema):
        sub = schema.subset(["city", "age"])
        assert sub.names == ["city", "age"]
        assert sub["city"].categories == ("paris", "london")

    def test_getitem_unknown(self, schema):
        with pytest.raises(SchemaError):
            schema["nope"]


class TestTable:
    def test_row_count(self, table):
        assert len(table) == 4
        assert table.n_columns == 3

    def test_missing_column_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table(schema, {"age": [1.0]})

    def test_extra_column_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table(
                schema,
                {"age": [1.0], "income": [1.0], "city": ["paris"], "zzz": [1]},
            )

    def test_ragged_columns_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table(schema, {"age": [1.0, 2.0], "income": [1.0], "city": ["paris"]})

    def test_categorical_normalized_to_str(self, schema):
        t = Table(schema, {"age": [1.0], "income": [2.0], "city": [123]})
        assert t["city"][0] == "123"

    def test_categorical_nan_becomes_none(self, schema):
        t = Table(schema, {"age": [1.0], "income": [2.0], "city": [float("nan")]})
        assert t["city"][0] is None

    def test_take_and_head(self, table):
        assert table.take([2, 0])["age"][0] == 31.0
        assert len(table.head(2)) == 2

    def test_sample_deterministic(self, table):
        a = table.sample(3, rng=7)
        b = table.sample(3, rng=7)
        np.testing.assert_array_equal(a["income"], b["income"])

    def test_sample_too_large(self, table):
        with pytest.raises(ValueError):
            table.sample(10)

    def test_split_partitions_rows(self, table):
        left, right = table.split(0.5, rng=0)
        assert len(left) + len(right) == len(table)

    def test_missing_mask(self, table):
        mask = table.missing_mask()
        assert mask[3, 0] and mask[3, 2]
        assert mask.sum() == 2

    def test_missing_fraction(self, table):
        assert table.missing_fraction("age") == 0.25
        assert table.missing_fraction("income") == 0.0

    def test_with_column(self, table):
        t2 = table.with_column("income", np.zeros(4))
        assert t2["income"].sum() == 0.0
        assert table["income"].sum() > 0.0  # original untouched

    def test_concat(self, table):
        combined = Table.concat([table, table])
        assert len(combined) == 8

    def test_concat_schema_mismatch(self, table, schema):
        other = Table(schema.subset(["age"]), {"age": [1.0]})
        with pytest.raises(SchemaError):
            Table.concat([table.select(["age", "income"]), other])

    def test_select(self, table):
        sub = table.select(["city"])
        assert sub.schema.names == ["city"]


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["b", "a", "c"])
        codes = enc.transform(["a", "b", "c"])
        np.testing.assert_array_equal(codes, [0.0, 1.0, 2.0])
        decoded = enc.inverse_transform(codes)
        assert list(decoded) == ["a", "b", "c"]

    def test_future_values_included(self):
        enc = LabelEncoder().fit(["a"], extra_values=["z"])
        assert enc.classes_ == ["a", "z"]

    def test_unknown_maps_to_reserved_code(self):
        enc = LabelEncoder().fit(["a", "b"])
        assert enc.transform(["mystery"])[0] == enc.unknown_code

    def test_missing_roundtrip(self):
        enc = LabelEncoder().fit(["a"])
        codes = enc.transform([None])
        assert np.isnan(codes[0])
        assert enc.inverse_transform(codes)[0] is None

    def test_inverse_snaps_to_nearest(self):
        enc = LabelEncoder().fit(["a", "b", "c"])
        assert enc.inverse_transform(np.array([0.4]))[0] == "a"
        assert enc.inverse_transform(np.array([1.6]))[0] == "c"
        assert enc.inverse_transform(np.array([99.0]))[0] == "c"
        assert enc.inverse_transform(np.array([-5.0]))[0] == "a"

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])


class TestMinMaxNormalizer:
    def test_unit_interval(self):
        norm = MinMaxNormalizer().fit(np.array([10.0, 20.0]))
        np.testing.assert_allclose(norm.transform(np.array([10.0, 15.0, 20.0])), [0.0, 0.5, 1.0])

    def test_out_of_range_extrapolates(self):
        norm = MinMaxNormalizer().fit(np.array([0.0, 10.0]))
        assert norm.transform(np.array([20.0]))[0] == 2.0
        assert norm.transform(np.array([-10.0]))[0] == -1.0

    def test_inverse_roundtrip(self):
        norm = MinMaxNormalizer().fit(np.array([3.0, 9.0]))
        values = np.array([3.0, 6.0, 9.0, 12.0])
        np.testing.assert_allclose(norm.inverse_transform(norm.transform(values)), values)

    def test_constant_column(self):
        norm = MinMaxNormalizer().fit(np.array([5.0, 5.0]))
        np.testing.assert_allclose(norm.transform(np.array([5.0])), [0.5])
        np.testing.assert_allclose(norm.inverse_transform(np.array([0.1])), [5.0])

    def test_nan_ignored_in_fit(self):
        norm = MinMaxNormalizer().fit(np.array([np.nan, 1.0, 3.0]))
        assert norm.minimum_ == 1.0 and norm.maximum_ == 3.0

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.array([np.nan, np.nan]))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxNormalizer().transform(np.array([1.0]))


class TestPreprocessor:
    def test_matrix_shape_and_range(self, schema, table):
        prep = TablePreprocessor(schema).fit(table)
        matrix = prep.transform(table)
        assert matrix.shape == (4, 3)
        finite = matrix[matrix != prep.missing_sentinel]
        assert finite.min() >= 0.0 and finite.max() <= 1.0

    def test_missing_becomes_sentinel(self, schema, table):
        prep = TablePreprocessor(schema).fit(table)
        matrix = prep.transform(table)
        assert matrix[3, 0] == -1.0  # age NaN
        assert matrix[3, 2] == -1.0  # city None

    def test_inverse_transform_roundtrip(self, schema):
        complete = Table(
            schema,
            {
                "age": np.array([25.0, 40.0]),
                "income": np.array([30e3, 80e3]),
                "city": ["paris", "london"],
            },
        )
        prep = TablePreprocessor(schema).fit(complete)
        restored = prep.inverse_transform(prep.transform(complete))
        np.testing.assert_allclose(restored["age"], complete["age"])
        assert list(restored["city"]) == list(complete["city"])

    def test_novel_category_out_of_clean_positions(self, schema, table):
        prep = TablePreprocessor(schema).fit(table)
        novel = Table(
            schema,
            {"age": [30.0], "income": [50e3], "city": ["atlantis"]},
        )
        value = prep.transform(novel)[0, 2]
        assert value == 1.5  # unknown categories sit at 1 + unknown_margin
        clean_positions = prep.valid_code_positions("city")
        assert clean_positions.max() <= 1.0
        assert value not in clean_positions

    def test_unknown_margin_configurable(self, schema, table):
        prep = TablePreprocessor(schema, unknown_margin=0.25).fit(table)
        novel = Table(schema, {"age": [30.0], "income": [50e3], "city": ["atlantis"]})
        assert prep.transform(novel)[0, 2] == 1.25
        with pytest.raises(ValueError):
            TablePreprocessor(schema, unknown_margin=-0.1)

    def test_future_categories_expand_domain(self, schema, table):
        prep = TablePreprocessor(schema).fit(table, future_categories={"city": ["tokyo"]})
        assert "tokyo" in prep.label_encoder("city").classes_

    def test_schema_mismatch_rejected(self, schema, table):
        other = TableSchema([ColumnSpec("x", "numeric")])
        prep = TablePreprocessor(other)
        with pytest.raises(SchemaError):
            prep.fit(table)

    def test_not_fitted(self, schema, table):
        with pytest.raises(NotFittedError):
            TablePreprocessor(schema).transform(table)

    def test_label_encoder_access_for_numeric_rejected(self, schema, table):
        prep = TablePreprocessor(schema).fit(table)
        with pytest.raises(SchemaError):
            prep.label_encoder("age")

    def test_inverse_bad_width(self, schema, table):
        prep = TablePreprocessor(schema).fit(table)
        with pytest.raises(ValueError):
            prep.inverse_transform(np.zeros((2, 5)))


class TestBatching:
    def test_minibatches_cover_all_rows(self):
        batches = list(iterate_minibatches(10, 3, rng=0))
        assert sorted(np.concatenate(batches).tolist()) == list(range(10))
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_minibatches_invalid_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0, rng=0))

    def test_validation_batches_fraction(self, table):
        batches = sample_validation_batches(table, count=5, fraction=0.5, rng=0)
        assert len(batches) == 5
        assert all(len(b) == 2 for b in batches)

    def test_validation_batches_fixed_size(self, table):
        batches = sample_validation_batches(table, count=3, size=4, rng=0)
        assert all(len(b) == 4 for b in batches)

    def test_validation_batches_size_too_big(self, table):
        with pytest.raises(ValueError):
            sample_validation_batches(table, count=1, size=99, rng=0)

    def test_validation_batches_deterministic(self, table):
        a = sample_validation_batches(table, count=2, fraction=0.5, rng=3)
        b = sample_validation_batches(table, count=2, fraction=0.5, rng=3)
        np.testing.assert_array_equal(a[1]["income"], b[1]["income"])


class TestCsvIo:
    def test_roundtrip(self, schema, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        restored = read_csv(path, schema)
        np.testing.assert_allclose(restored["income"], table["income"])
        assert np.isnan(restored["age"][3])
        assert restored["city"][3] is None

    def test_header_mismatch(self, schema, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        with pytest.raises(SchemaError):
            read_csv(path, schema.subset(["age"]))

    def test_missing_file(self, schema, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "nope.csv", schema)

    def test_empty_file(self, schema, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path, schema)
