"""Tests for the §5 future-work extensions: cleaning/selection and
interpretability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DQuaG,
    DQuaGConfig,
    attention_summary,
    clean_dataset,
    explain_row,
    select_cleanest,
)
from repro.errors import NumericAnomalyInjector
from repro.exceptions import ConfigurationError, ValidationError

from tests.test_core_pipeline import make_dependent_table


@pytest.fixture(scope="module")
def fitted():
    train = make_dependent_table(600, seed=0)
    calib = make_dependent_table(300, seed=1)
    config = DQuaGConfig(hidden_dim=24, epochs=25, batch_size=32, feature_embedding_dim=4)
    pipeline = DQuaG(config).fit(train, rng=0, calibration_table=calib)
    holdout = make_dependent_table(400, seed=2)
    dirty, truth = NumericAnomalyInjector(["y"], fraction=0.2).inject(holdout, rng=3)
    return pipeline, holdout, dirty, truth


class TestCleaning:
    def test_drop_removes_flagged_rows(self, fitted):
        pipeline, _, dirty, _ = fitted
        outcome = clean_dataset(pipeline, dirty, strategy="drop")
        assert outcome.n_rows_out < outcome.n_rows_in
        assert outcome.n_cells_repaired == 0
        assert outcome.residual_flagged_fraction < 0.10

    def test_repair_keeps_all_rows(self, fitted):
        pipeline, _, dirty, _ = fitted
        outcome = clean_dataset(pipeline, dirty, strategy="repair")
        assert outcome.n_rows_out == outcome.n_rows_in
        assert outcome.n_cells_repaired > 0

    def test_hybrid_bounded_by_drop_and_repair(self, fitted):
        pipeline, _, dirty, _ = fitted
        drop = clean_dataset(pipeline, dirty, strategy="drop")
        hybrid = clean_dataset(pipeline, dirty, strategy="hybrid")
        # Hybrid repairs first, so it retains at least as many rows as drop.
        assert hybrid.n_rows_out >= drop.n_rows_out
        assert hybrid.residual_flagged_fraction <= 0.10

    def test_retention_property(self, fitted):
        pipeline, holdout, _, _ = fitted
        outcome = clean_dataset(pipeline, holdout, strategy="drop")
        assert outcome.retention == pytest.approx(outcome.n_rows_out / outcome.n_rows_in)

    def test_unknown_strategy(self, fitted):
        pipeline, holdout, _, _ = fitted
        with pytest.raises(ConfigurationError):
            clean_dataset(pipeline, holdout, strategy="bleach")


class TestSelection:
    def test_selects_k_lowest_error_rows(self, fitted):
        pipeline, _, dirty, truth = fitted
        k = 100
        selected = select_cleanest(pipeline, dirty, k)
        assert selected.n_rows == k
        # The cleanest k rows should be mostly uncorrupted.
        report = pipeline.validate(selected)
        assert report.flagged_fraction <= 0.10

    def test_k_larger_than_table(self, fitted):
        pipeline, holdout, _, _ = fitted
        assert select_cleanest(pipeline, holdout, 10**6).n_rows == holdout.n_rows

    def test_negative_k_rejected(self, fitted):
        pipeline, holdout, _, _ = fitted
        with pytest.raises(ValueError):
            select_cleanest(pipeline, holdout, -1)


class TestExplain:
    def test_contributions_sum_to_one(self, fitted):
        pipeline, _, dirty, _ = fitted
        report = pipeline.validate(dirty)
        row = int(report.flagged_rows[0])
        contributions = explain_row(report, dirty, row)
        assert sum(c.share for c in contributions) == pytest.approx(1.0)
        assert len(contributions) == dirty.n_columns

    def test_corrupted_feature_ranks_high(self, fitted):
        # Errors are feature-scale-normalized, so neighbors of a corrupted
        # cell also inflate (the GNN propagates the damage); the injected
        # column must still rank in the top contributions and be flagged.
        pipeline, _, dirty, truth = fitted
        report = pipeline.validate(dirty)
        hits = np.flatnonzero(truth.row_mask & report.row_flags)
        row = int(hits[0])
        contributions = explain_row(report, dirty, row)
        top_two = {c.feature for c in contributions[:2]}
        assert "y" in top_two  # the injected column
        by_name = {c.feature: c for c in contributions}
        assert by_name["y"].share > 0.2

    def test_row_out_of_range(self, fitted):
        pipeline, holdout, _, _ = fitted
        report = pipeline.validate(holdout)
        with pytest.raises(ValidationError):
            explain_row(report, holdout, 10**6)

    def test_attention_summary_normalized(self, fitted):
        pipeline, holdout, _, _ = fitted
        summary = attention_summary(pipeline, holdout)
        assert summary  # gat_gin has attention layers
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in summary.values())
        # Attention over each source's neighborhood sums to ~1.
        names = pipeline.graph.features
        for source in names:
            total = sum(v for (s, _), v in summary.items() if s == source)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_attention_summary_requires_gat(self, fitted):
        _, holdout, _, _ = fitted
        train = make_dependent_table(300, seed=5)
        config = DQuaGConfig(architecture="gcn", hidden_dim=8, epochs=2)
        gcn_pipeline = DQuaG(config).fit(train, rng=0)
        with pytest.raises(ValidationError):
            attention_summary(gcn_pipeline, holdout)
