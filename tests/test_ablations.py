"""Smoke tests for the ablation experiment module."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale, clear_cache, run_ablations


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="module")
def result():
    return run_ablations(scale=ExperimentScale.smoke(), seed=0, n_batches=4)


class TestAblations:
    def test_all_three_ablations_present(self, result):
        ablations = {row.ablation for row in result.rows}
        assert ablations == {"loss weighting", "feature graph", "threshold percentile"}

    def test_loss_weighting_variants(self, result):
        variants = result.by_variant("loss weighting")
        assert set(variants) == {"weighted (paper)", "unweighted"}

    def test_graph_variants(self, result):
        variants = result.by_variant("feature graph")
        assert set(variants) == {"hybrid (paper)", "statistics only", "star (no inference)"}

    def test_percentile_monotone_clean_rate(self, result):
        variants = result.by_variant("threshold percentile")
        assert variants["p90"].clean_flag_rate >= variants["p95"].clean_flag_rate
        assert variants["p95"].clean_flag_rate >= variants["p99"].clean_flag_rate

    def test_separation_is_rate_difference(self, result):
        row = result.rows[0]
        assert row.separation == pytest.approx(
            100.0 * (row.dirty_flag_rate - row.clean_flag_rate)
        )

    def test_render(self, result):
        rendered = result.render()
        assert "Ablations" in rendered and "p95" in rendered
