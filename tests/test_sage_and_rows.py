"""Tests for the GraphSAGE extension layer and the row-detection
experiment module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentScale, clear_cache, run_row_detection
from repro.gnn import GraphContext, SAGEConv, build_encoder
from repro.graph import FeatureGraph
from repro.nn import Tensor


@pytest.fixture
def graph() -> FeatureGraph:
    return FeatureGraph(["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d")])


@pytest.fixture
def ctx(graph) -> GraphContext:
    return GraphContext.from_feature_graph(graph)


class TestSAGEConv:
    def test_output_shape(self, ctx):
        layer = SAGEConv(3, 8, rng=0)
        out = layer(Tensor(np.zeros((5, 4, 3))), ctx)
        assert out.shape == (5, 4, 8)

    def test_mean_aggregation(self, ctx):
        # Node b (index 1) has neighbors a and c; doubling both neighbor
        # inputs doubles the neighbor contribution exactly (mean is linear).
        layer = SAGEConv(1, 4, rng=0)
        base = np.zeros((1, 4, 1))
        base[0, 0, 0], base[0, 2, 0] = 1.0, 3.0
        doubled = base * 2.0
        bias = layer.bias.data
        out_base = layer(Tensor(base), ctx).numpy()[0, 1] - bias
        out_doubled = layer(Tensor(doubled), ctx).numpy()[0, 1] - bias
        np.testing.assert_allclose(out_doubled, 2.0 * out_base, atol=1e-12)

    def test_self_and_neighbor_paths_distinct(self, ctx):
        layer = SAGEConv(2, 4, rng=0)
        assert not np.allclose(layer.weight_self.data, layer.weight_neigh.data)

    def test_gradients_flow(self, ctx):
        layer = SAGEConv(2, 4, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4, 2)), requires_grad=True)
        layer(x, ctx).sum().backward()
        assert layer.weight_self.grad is not None
        assert layer.weight_neigh.grad is not None
        assert x.grad is not None

    def test_node_count_mismatch(self, ctx):
        layer = SAGEConv(2, 4, rng=0)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 9, 2))), ctx)

    @pytest.mark.parametrize("architecture", ["graphsage", "sage_gin"])
    def test_encoder_factory_builds_sage(self, architecture, graph, ctx):
        encoder = build_encoder(architecture, 3, 8, graph, rng=0)
        out = encoder(Tensor(np.zeros((2, 4, 3))), ctx)
        assert out.shape == (2, 4, 8)


class TestRowDetection:
    @pytest.fixture(autouse=True, scope="class")
    def _fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def test_runs_on_hotel_subset(self):
        result = run_row_detection(
            scale=ExperimentScale.smoke(),
            seed=0,
            datasets=("hotel",),
            methods_subset=("dquag", "deequ_expert"),
        )
        # All four hotel scenarios scored for both methods.
        scenarios = {s for (_, s, _) in result.metrics}
        assert scenarios == {"N", "S", "M", "Conflicts"}
        # Expert rules cannot pinpoint hidden-conflict rows at all.
        assert result.metrics[("hotel", "Conflicts", "deequ_expert")].recall == 0.0
        # Ordinary numeric anomalies: rules are precise where they fire.
        deequ_n = result.metrics[("hotel", "N", "deequ_expert")]
        assert deequ_n.recall > 0.5
        rendered = result.render()
        assert "Row-level detection" in rendered
