"""Preprocessing benchmarks — compiled TransformPlan vs the legacy path.

Quantifies what the compiled preprocessing plan (:mod:`repro.data.plan`)
buys on a categorical-heavy table (the Airbnb/Playstore-shaped workloads
of Figure 3, where per-value label encoding dominated the encode half):

* ``test_categorical_transform_speedup`` — the streaming ingest
  transform (chunked encode of a table, as the streaming validator and
  shard workers run it). Legacy: ``take(np.arange(...))`` row copies +
  per-value dict-lookup label encoding. Plan: zero-copy row views +
  vectorized sorted-vocabulary encode into one reused buffer.
  Acceptance: **≥ 5×**, with bit-identical output.
* ``test_validate_end_to_end_speedup`` — end-to-end validation through
  the paper's encode-bound ablation architecture (graph2vec, Table 2),
  where preprocessing is a first-class share of the wall clock. Both
  the one-shot ``validate()`` and the bounded-memory streaming path at
  Figure-4 row counts are measured; acceptance: **≥ 1.5×** on the
  streaming path, with identical flags. (Encoder-dominant
  architectures like gat_gin see the same absolute preprocessing win,
  but the GNN forward hides it in the ratio.)

Speed bars are asserted at standard scale and above; ``REPRO_SCALE=smoke``
(CI) still asserts **parity** — plan output must be bit-identical and
verdicts must agree — so CI stays hardware-agnostic. Machine-readable
snapshots land in ``results/BENCH_preprocess_*.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema, TablePreprocessor
from repro.experiments.reporting import ResultTable
from repro.utils.timing import Timer

from benchmarks.conftest import emit_result

SLAB_ROWS = 10_000
N_CATEGORICAL = 12
N_NUMERIC = 2
CARDINALITY = 6
TRANSFORM_SPEEDUP_BAR = 5.0
E2E_SPEEDUP_BAR = 1.5


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def make_schema() -> TableSchema:
    vocabularies = [
        tuple(f"{chr(65 + i)}{chr(65 + j)}_cat{j}" for j in range(CARDINALITY))
        for i in range(N_CATEGORICAL)
    ]
    specs = [
        ColumnSpec(f"c{i}", ColumnKind.CATEGORICAL, f"categorical {i}", categories=vocabularies[i])
        for i in range(N_CATEGORICAL)
    ]
    specs += [ColumnSpec(f"n{i}", ColumnKind.NUMERIC, f"numeric {i}") for i in range(N_NUMERIC)]
    return TableSchema(specs)


def make_table(schema: TableSchema, n_rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, n_rows)
    columns: dict[str, np.ndarray] = {}
    for i in range(N_CATEGORICAL):
        vocabulary = np.array(schema[f"c{i}"].categories)
        index = np.minimum(
            (base * CARDINALITY).astype(int) + rng.integers(0, 2, n_rows), CARDINALITY - 1
        )
        columns[f"c{i}"] = vocabulary[index]
    columns["n0"] = base
    for i in range(1, N_NUMERIC):
        columns[f"n{i}"] = 1.0 - base + rng.normal(0.0, 0.01, n_rows)
    return Table(schema, columns)


def legacy_transform_chunks(preprocessor: TablePreprocessor, table: Table, chunk_size: int = 8192):
    """The pre-plan chunked encode: index-array row copies + per-value
    label encoding — what ``transform_chunks`` did before compilation."""
    for start in range(0, table.n_rows, chunk_size):
        stop = min(start + chunk_size, table.n_rows)
        yield preprocessor.transform(table.take(np.arange(start, stop)))


@pytest.fixture(scope="module")
def preprocess_setup(scale):
    schema = make_schema()
    train = make_table(schema, max(scale.train_rows, 1000), seed=1)
    slab = make_table(schema, SLAB_ROWS, seed=2)
    # The encode-bound serving model: the paper's graph2vec ablation
    # encoder (Table 2) at the paper's hidden width.
    config = DQuaGConfig(
        architecture="graph2vec", hidden_dim=64, epochs=max(scale.epochs // 4, 2), seed=0
    )
    pipeline = DQuaG(config).fit(train, rng=0)
    return schema, pipeline, slab


def test_categorical_transform_speedup(preprocess_setup, scale):
    """Acceptance: plan ≥ 5× over the legacy chunked encode, bit-identical."""
    _, pipeline, slab = preprocess_setup
    preprocessor = pipeline.preprocessor
    plan = preprocessor.compile()

    legacy_matrix = preprocessor.transform(slab)
    plan_matrix = plan.transform(slab)
    parity = bool(
        np.array_equal(plan_matrix, legacy_matrix) and plan_matrix.dtype == legacy_matrix.dtype
    )
    chunked = np.concatenate([chunk.copy() for chunk in plan.transform_chunks(slab, 8192)])
    chunk_parity = bool(np.array_equal(chunked, legacy_matrix))

    legacy_chunk_seconds = _best_of(lambda: list(legacy_transform_chunks(preprocessor, slab)))
    plan_chunk_seconds = _best_of(lambda: list(plan.transform_chunks(slab, 8192)))
    legacy_seconds = _best_of(lambda: preprocessor.transform(slab))
    plan_seconds = _best_of(lambda: plan.transform(slab))
    chunk_speedup = legacy_chunk_seconds / plan_chunk_seconds
    oneshot_speedup = legacy_seconds / plan_seconds

    table = ResultTable(
        f"Preprocess — compiled plan vs legacy on a categorical-heavy slab "
        f"({SLAB_ROWS} rows, {N_CATEGORICAL} categorical + {N_NUMERIC} numeric, scale={scale.name})",
        ["path", "seconds", "rows/s"],
    )
    table.add_row("legacy chunked (take + dict lookups)", legacy_chunk_seconds, int(SLAB_ROWS / legacy_chunk_seconds))
    table.add_row("plan chunked (views + vectorized)", plan_chunk_seconds, int(SLAB_ROWS / plan_chunk_seconds))
    table.add_row("legacy one-shot transform", legacy_seconds, int(SLAB_ROWS / legacy_seconds))
    table.add_row("plan one-shot transform", plan_seconds, int(SLAB_ROWS / plan_seconds))
    table.add_note(f"chunked ingest speedup: {chunk_speedup:.2f}x (bar: {TRANSFORM_SPEEDUP_BAR}x)")
    table.add_note(f"one-shot speedup: {oneshot_speedup:.2f}x")
    table.add_note(f"bit-identical to legacy transform: {parity and chunk_parity}")
    emit_result(
        "preprocess_transform",
        table.render(),
        data={
            "scale": scale.name,
            "rows": SLAB_ROWS,
            "categorical_columns": N_CATEGORICAL,
            "numeric_columns": N_NUMERIC,
            "legacy_chunked_seconds": legacy_chunk_seconds,
            "plan_chunked_seconds": plan_chunk_seconds,
            "legacy_oneshot_seconds": legacy_seconds,
            "plan_oneshot_seconds": plan_seconds,
            "chunked_speedup": chunk_speedup,
            "oneshot_speedup": oneshot_speedup,
            "bit_identical": parity and chunk_parity,
        },
    )

    # Parity is the CI gate; speed bars apply at standard scale and up
    # (a loaded CI runner cannot exhibit deterministic throughput).
    assert parity, "plan.transform is not bit-identical to the legacy transform"
    assert chunk_parity, "plan.transform_chunks diverged from the legacy transform"
    if scale.name not in ("smoke", "fast"):
        assert chunk_speedup >= TRANSFORM_SPEEDUP_BAR, (
            f"chunked transform speedup {chunk_speedup:.2f}x below the "
            f"{TRANSFORM_SPEEDUP_BAR}x acceptance bar"
        )


def test_validate_end_to_end_speedup(preprocess_setup, scale):
    """Acceptance: ≥ 1.5× end-to-end streamed validate() on the
    encode-bound architecture, identical verdicts."""
    schema, pipeline, slab = preprocess_setup
    preprocessor = pipeline.preprocessor
    engine = pipeline.engine
    assert engine is not None

    # One-shot validate(): legacy encode + engine vs the plan path.
    legacy_oneshot = _best_of(lambda: engine.validate_matrix(preprocessor.transform(slab)), 3)
    plan_oneshot = _best_of(lambda: pipeline.validate(slab), 3)
    report_legacy = engine.validate_matrix(preprocessor.transform(slab))
    report_plan = pipeline.validate(slab)
    flags_identical = bool(
        np.array_equal(report_legacy.row_flags, report_plan.row_flags)
        and np.array_equal(report_legacy.cell_flags, report_plan.cell_flags)
        and np.array_equal(report_legacy.cell_errors, report_plan.cell_errors)
    )

    # Streamed validate at Figure-4 row counts: the legacy stream feeds
    # take()-copied, per-value-encoded chunks; the plan path encodes
    # zero-copy row views into one reused buffer.
    n_rows = 24_000 if scale.name == "smoke" else 100_000
    big = make_table(schema, n_rows, seed=7)
    streaming = pipeline.streaming_validator(chunk_size=8192)

    start = time.perf_counter()
    legacy_summary = streaming.validate_stream(legacy_transform_chunks(preprocessor, big))
    legacy_stream_seconds = time.perf_counter() - start
    start = time.perf_counter()
    plan_summary = streaming.validate_table(big)
    plan_stream_seconds = time.perf_counter() - start
    stream_speedup = legacy_stream_seconds / plan_stream_seconds
    verdicts_identical = bool(
        legacy_summary.n_flagged == plan_summary.n_flagged
        and np.array_equal(legacy_summary.flagged_rows, plan_summary.flagged_rows)
        and legacy_summary.is_problematic == plan_summary.is_problematic
    )

    table = ResultTable(
        f"Preprocess — end-to-end validate, graph2vec encoder "
        f"(categorical-heavy slab, scale={scale.name})",
        ["path", "rows", "seconds", "rows/s"],
    )
    table.add_row("one-shot legacy encode", SLAB_ROWS, legacy_oneshot, int(SLAB_ROWS / legacy_oneshot))
    table.add_row("one-shot compiled plan", SLAB_ROWS, plan_oneshot, int(SLAB_ROWS / plan_oneshot))
    table.add_row("streamed legacy encode", n_rows, legacy_stream_seconds, int(n_rows / legacy_stream_seconds))
    table.add_row("streamed compiled plan", n_rows, plan_stream_seconds, int(n_rows / plan_stream_seconds))
    table.add_note(f"streamed speedup: {stream_speedup:.2f}x (bar: {E2E_SPEEDUP_BAR}x)")
    table.add_note(f"one-shot speedup: {legacy_oneshot / plan_oneshot:.2f}x")
    table.add_note(f"flags identical: {flags_identical}; verdicts identical: {verdicts_identical}")
    emit_result(
        "preprocess_e2e",
        table.render(),
        data={
            "scale": scale.name,
            "architecture": "graph2vec",
            "oneshot_rows": SLAB_ROWS,
            "stream_rows": n_rows,
            "legacy_oneshot_seconds": legacy_oneshot,
            "plan_oneshot_seconds": plan_oneshot,
            "legacy_stream_seconds": legacy_stream_seconds,
            "plan_stream_seconds": plan_stream_seconds,
            "oneshot_speedup": legacy_oneshot / plan_oneshot,
            "stream_speedup": stream_speedup,
            "flags_identical": flags_identical,
            "verdicts_identical": verdicts_identical,
        },
    )

    assert flags_identical, "plan-encoded validate() changed flags vs the legacy encode"
    assert verdicts_identical, "streamed plan path changed the stream verdict"
    if scale.name not in ("smoke", "fast"):
        assert stream_speedup >= E2E_SPEEDUP_BAR, (
            f"streamed end-to-end speedup {stream_speedup:.2f}x below the "
            f"{E2E_SPEEDUP_BAR}x acceptance bar"
        )
