"""Shared benchmark infrastructure.

Each bench file regenerates one of the paper's tables/figures. The
experiment itself runs once per session (module fixtures + the process
cache in ``repro.experiments.cache``); the ``benchmark`` fixture times
the underlying per-batch operation.

Scale is controlled by ``REPRO_SCALE`` (smoke/fast/standard/full;
default: standard — see ``repro.experiments.harness`` for the grid).
Rendered result tables are written to ``benchmarks/results/`` and echoed
to the terminal (bypassing capture) so `pytest benchmarks/` output
contains the paper-vs-measured rows.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import resolve_scale

RESULTS_DIR = Path(__file__).parent / "results"


def emit_result(name: str, rendered: str, data: dict | None = None) -> None:
    """Persist and display a rendered experiment table.

    ``data`` additionally writes a machine-readable
    ``results/BENCH_{name}.json`` snapshot so the perf trajectory can be
    tracked across commits without parsing rendered tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    if data is not None:
        payload = {"bench": name, **data}
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(json.dumps(payload, indent=2) + "\n")
    # Bypass pytest's capture so the rows appear in the benchmark log.
    print(f"\n{rendered}\n", file=sys.__stdout__, flush=True)


@pytest.fixture(scope="session")
def scale():
    return resolve_scale(None)
