"""Router-tier benchmarks — fleet throughput over one gateway.

Quantifies what the multi-node tier buys: N worker processes each run
their own engine (no shared GIL), and the router consistent-hashes
pipelines across them, so a stampede spread over several pipelines
fans out over real cores instead of contending inside one process.

* ``test_router_fleet_throughput`` — RPS and latency percentiles of a
  single async gateway vs a 4-replica router fleet serving the same
  pipelines. The >=2x acceptance bar is asserted at standard scale and
  above on multi-core hosts; a smoke run gates on **parity** instead
  (router-fronted reports bit-identical to single-node) and records
  the numbers.

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass. Machine-readable
snapshots land in ``results/BENCH_router.json``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np
import pytest

from repro.experiments.reporting import ResultTable
from repro.runtime import ValidationService
from repro.serve import AsyncGateway, Client, GatewayFleet, RouterGateway
from repro.serve.cli import fit_demo_pipeline

from benchmarks.conftest import emit_result
from tests.test_serve import make_batch

ACCEPTANCE_SPEEDUP = 2.0
REPLICAS = 4
N_PIPELINES = 8  # spread across the ring so every replica owns traffic
ROWS_PER_REQUEST = 16


@pytest.fixture(scope="module")
def demo_archive():
    pipeline = fit_demo_pipeline()
    handle, path = tempfile.mkstemp(prefix="repro-bench-router-", suffix=".npz")
    os.close(handle)
    pipeline.save(path)
    yield pipeline, path
    os.unlink(path)


def run_stampede(port: int, pipelines: list, n_clients: int, per_client: int, batch) -> dict:
    """Hammer one port with ``n_clients`` clients spread over pipelines."""
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def worker(index: int):
        client = Client(port=port, timeout=120)
        name = pipelines[index % len(pipelines)]
        barrier.wait(timeout=120)
        for _ in range(per_client):
            started = time.perf_counter()
            try:
                client.validate(name, batch)
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
        client.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=120)
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - started

    assert not errors, errors[:3]
    n = len(latencies)
    assert n == n_clients * per_client
    latencies.sort()
    return {
        "wall_seconds": wall,
        "rps": n / wall,
        "p50_ms": latencies[n // 2] * 1000.0,
        "p99_ms": latencies[max(0, int(n * 0.99) - 1)] * 1000.0,
        "requests": n,
    }


def test_router_fleet_throughput(demo_archive, scale):
    """Single async gateway vs a 4-replica router-fronted fleet."""
    pipeline, archive = demo_archive
    cpu_count = os.cpu_count() or 1
    if scale.name == "smoke":
        n_clients, per_client = 16, 3
    else:
        n_clients, per_client = 64, 6
    names = [f"demo-{i}" for i in range(N_PIPELINES)]
    archives = {name: archive for name in names}
    batch = make_batch(pipeline, ROWS_PER_REQUEST, seed=0)
    reference = pipeline.validate(batch)

    measured: dict[str, dict] = {}

    service = ValidationService(capacity=N_PIPELINES)
    for name in names:
        service.register(name, archive)
    try:
        with AsyncGateway(service, port=0, batch_window_ms=2.0) as gateway:
            measured["single"] = run_stampede(
                gateway.port, names, n_clients, per_client, batch
            )
    finally:
        service.close()

    with GatewayFleet(archives, replicas=REPLICAS, capacity=N_PIPELINES) as fleet:
        router = RouterGateway(fleet.targets(), port=0, archives=archives).start()
        try:
            # Parity gate: the routed report is bit-identical to local.
            routed = Client(port=router.port).validate(
                names[0], batch, include_errors=True
            )
            np.testing.assert_array_equal(routed.row_flags, reference.row_flags)
            np.testing.assert_array_equal(routed.sample_errors, reference.sample_errors)
            assert routed.is_problematic == reference.is_problematic

            measured["router"] = run_stampede(
                router.port, names, n_clients, per_client, batch
            )
            metrics = router.metrics_text()
            assert "repro_router_replicas_healthy 4" in metrics
        finally:
            router.close()

    speedup = measured["router"]["rps"] / measured["single"]["rps"]
    table = ResultTable(
        f"Router fleet — {REPLICAS} replicas x {N_PIPELINES} pipelines, "
        f"{n_clients} clients x {per_client} requests of {ROWS_PER_REQUEST} rows "
        f"({cpu_count} CPUs, scale={scale.name})",
        ["topology", "RPS", "p50 ms", "p99 ms", "speedup"],
    )
    table.add_row(
        "single gateway", f"{measured['single']['rps']:.0f}",
        f"{measured['single']['p50_ms']:.1f}", f"{measured['single']['p99_ms']:.1f}", 1.0,
    )
    table.add_row(
        f"router + {REPLICAS} replicas", f"{measured['router']['rps']:.0f}",
        f"{measured['router']['p50_ms']:.1f}", f"{measured['router']['p99_ms']:.1f}",
        f"{speedup:.2f}",
    )
    emit_result(
        "router",
        table.render(),
        data={
            "scale": scale.name,
            "cpu_count": cpu_count,
            "replicas": REPLICAS,
            "n_pipelines": N_PIPELINES,
            "n_clients": n_clients,
            "per_client": per_client,
            "rows_per_request": ROWS_PER_REQUEST,
            "single": measured["single"],
            "router": measured["router"],
            "speedup": speedup,
        },
    )

    # The tail must stay bounded at any scale.
    assert measured["router"]["p99_ms"] < 30_000.0

    if cpu_count < 4:
        pytest.skip("acceptance bar needs a 4+ core host; numbers recorded")
    if scale.name == "smoke":
        pytest.skip(
            "acceptance bar asserted at standard scale and above; parity gated"
        )
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"router fleet speedup {speedup:.2f}x with {REPLICAS} replicas is below "
        f"the {ACCEPTANCE_SPEEDUP}x acceptance bar"
    )
