"""Figure 4 — scalability of validation time (§4.5).

Regenerates the rows-vs-seconds series at 5/10/18 dimensions on the NY
Taxi data (set ``REPRO_FULL_SCALE=1`` for the paper's 10⁶ rows) and
benchmarks validation of a fixed 10k-row slab.

Since the runtime refactor, ``pipeline.validate`` serves through the
compiled :class:`~repro.runtime.engine.InferenceEngine`; the timings
here are therefore engine timings. ``benchmarks/bench_runtime.py``
isolates the engine-vs-autograd speedup and streaming throughput.
"""

from __future__ import annotations

import pytest

from repro.datasets import TaxiGenerator
from repro.experiments import run_figure4

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def figure4_result(scale):
    result = run_figure4(scale=scale, seed=0)
    emit_result("figure4", result.render())
    return result


def test_figure4_linear_scaling(figure4_result, benchmark, scale):
    r = figure4_result
    dims_present = sorted({d for d, _ in r.timings})
    for dims in dims_present:
        # The paper's claim: linear growth in rows (not exponential).
        assert r.linearity_r2(dims) > 0.85, dims
    # More dimensions must not be cheaper at the largest size.
    sizes = sorted({rows for _, rows in r.timings})
    largest = sizes[-1]
    assert r.seconds(dims_present[-1], largest) >= 0.5 * r.seconds(dims_present[0], largest)

    # Benchmark: fixed-size validation (10k rows, 18 dims) through the
    # compiled-engine serving path.
    from repro.core import DQuaG, DQuaGConfig

    generator = TaxiGenerator()
    columns = TaxiGenerator.dimension_subsets()[18]
    train = generator.generate_clean(scale.train_rows, rng=1).select(columns)
    table = generator.generate_clean(10_000, rng=2).select(columns)
    config = DQuaGConfig(hidden_dim=scale.hidden_dim, epochs=max(scale.epochs // 4, 2), seed=0)
    pipeline = DQuaG(config).fit(train, rng=0)
    assert pipeline.engine is not None  # serving must be compiled, not autograd
    benchmark(lambda: pipeline.validate(table))
