"""Shared-memory data plane benchmarks — parity, throughput, bounded RSS.

Quantifies what :mod:`repro.runtime.shm` buys on the workload it was
built for: wide categorical-heavy tables, where the pickled fan-out
pays one full serialize/deserialize of every object column per shard
plus a redundant per-worker re-transform.

* ``test_shm_parity`` — slab-path reports are bit-identical to the
  pickled fan-out and the one-shot reference, for tables and streams
  (asserted at every scale — this is the gate that lets the speedup
  claim mean anything);
* ``test_shm_throughput`` — pickled vs shm sharded validation at 4
  workers. The ≥1.5× acceptance bar is asserted on hosts with ≥4 CPUs
  at standard scale or above (a 1-core runner cannot exhibit the
  parallel attach); numbers are recorded regardless;
* ``test_shm_stream_rss_bounded`` — streaming through the slab ring
  keeps parent RSS O(ring), not O(stream): the stream is fed from a
  generator and the resident-set growth must stay far below the full
  materialized matrix.

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass. Machine-readable
snapshots land in ``results/BENCH_shm*.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.experiments.reporting import ResultTable
from repro.runtime.shm import shm_available
from repro.runtime.sharding import ParallelValidator

from benchmarks.conftest import emit_result

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this platform"
)

#: wide categorical-heavy layout: 6 numeric + 10 categorical columns —
#: the shape where pickling object columns dominates the fan-out cost
N_NUMERIC = 6
N_CATEGORICAL = 10
CATEGORIES = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot")

ACCEPTANCE_WORKERS = 4
ACCEPTANCE_SPEEDUP = 1.5
CHUNK_SIZE = 4096


def make_wide_schema() -> TableSchema:
    specs = [
        ColumnSpec(f"n{i}", ColumnKind.NUMERIC, f"numeric driver {i}")
        for i in range(N_NUMERIC)
    ]
    specs += [
        ColumnSpec(
            f"c{i}", ColumnKind.CATEGORICAL, f"band {i}", categories=CATEGORIES
        )
        for i in range(N_CATEGORICAL)
    ]
    return TableSchema(specs)


def make_wide(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, n)
    columns: dict = {}
    for i in range(N_NUMERIC):
        columns[f"n{i}"] = (i + 1.0) * base + rng.normal(0, 0.01, n)
    edges = np.linspace(0.0, 1.0, len(CATEGORIES) + 1)[1:-1]
    for i in range(N_CATEGORICAL):
        shifted = np.clip(base + rng.normal(0, 0.02, n), 0.0, 1.0)
        columns[f"c{i}"] = np.array(CATEGORIES)[np.digitize(shifted, edges)]
    return Table(make_wide_schema(), columns)


def bench_rows(scale) -> int:
    if os.environ.get("REPRO_FULL_SCALE"):
        return 400_000
    if scale.name == "smoke":
        return 20_000
    return 120_000


@pytest.fixture(scope="module")
def shm_setup(scale, tmp_path_factory):
    train = make_wide(scale.train_rows, seed=1)
    config = DQuaGConfig(hidden_dim=32, epochs=max(scale.epochs // 4, 2), seed=0)
    pipeline = DQuaG(config).fit(train, rng=0)
    archive = tmp_path_factory.mktemp("shm") / "wide.npz"
    pipeline.save(archive)
    return pipeline, archive


def rss_bytes() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return 0  # pragma: no cover - non-Linux


def test_shm_parity(shm_setup, scale):
    """Acceptance gate: shm == pickled == one-shot, tables and streams."""
    pipeline, archive = shm_setup
    holdout = make_wide(10_000, seed=3)
    one_shot = pipeline.streaming_validator(chunk_size=CHUNK_SIZE).validate_table(holdout)
    chunks = [
        holdout.slice_rows(start, min(start + 900, holdout.n_rows))
        for start in range(0, holdout.n_rows, 900)
    ]

    rows = []
    with ParallelValidator(archive, workers=2, chunk_size=CHUNK_SIZE, use_shm=True) as shm_v, \
            ParallelValidator(archive, workers=2, chunk_size=CHUNK_SIZE, use_shm=False) as pk_v:
        shm_table = shm_v.validate_table(holdout)
        pickled_table = pk_v.validate_table(holdout)
        assert shm_v.shm_stats["shm_tables"] == 1, "shm table path did not run"
        rows.append(("table", shm_table.to_dict() == pickled_table.to_dict(),
                     shm_table.to_dict() == one_shot.to_dict()))
        shm_stream = shm_v.validate_stream(iter(chunks))
        pickled_stream = pk_v.validate_stream(iter(chunks))
        assert shm_v.shm_stats["shm_stream_shards"] > 0, "shm stream path did not run"
        rows.append(("stream", shm_stream.to_dict() == pickled_stream.to_dict(),
                     shm_stream.n_flagged == one_shot.n_flagged))

    table = ResultTable(
        f"Shared memory — parity on a wide categorical slab "
        f"({holdout.n_rows} rows, {N_NUMERIC}+{N_CATEGORICAL} cols, scale={scale.name})",
        ["path", "shm == pickled", "shm == one-shot"],
    )
    for path, vs_pickled, vs_one_shot in rows:
        table.add_row(path, vs_pickled, vs_one_shot)
    emit_result(
        "shm_parity",
        table.render(),
        data={
            "scale": scale.name,
            "rows": holdout.n_rows,
            "parity": {path: bool(a and b) for path, a, b in rows},
        },
    )
    assert all(a and b for _, a, b in rows)


def test_shm_throughput(shm_setup, scale):
    """Pickled fan-out vs slab windows on the wide categorical workload."""
    _, archive = shm_setup
    n_rows = bench_rows(scale)
    big = make_wide(n_rows, seed=7)
    cpu_count = os.cpu_count() or 1
    workers = min(ACCEPTANCE_WORKERS, max(2, cpu_count))

    timings: dict[str, float] = {}
    flagged: dict[str, int] = {}
    for label, use_shm in (("pickled", False), ("shm", True)):
        with ParallelValidator(
            archive, workers=workers, chunk_size=CHUNK_SIZE, use_shm=use_shm
        ).warm() as parallel:
            start = time.perf_counter()
            summary = parallel.validate_table(big)
            timings[label] = time.perf_counter() - start
            if use_shm:
                assert parallel.shm_stats["shm_tables"] == 1
                assert parallel.shm_stats["fallbacks"] == 0
        flagged[label] = summary.n_flagged
    assert flagged["shm"] == flagged["pickled"]
    speedup = timings["pickled"] / timings["shm"]

    table = ResultTable(
        f"Shared memory — sharded throughput, wide categorical table "
        f"({n_rows} rows, {N_NUMERIC}+{N_CATEGORICAL} cols, {workers} workers, "
        f"{cpu_count} CPUs, scale={scale.name})",
        ["path", "seconds", "rows/s", "speedup"],
    )
    table.add_row("pickled fan-out", timings["pickled"], int(n_rows / timings["pickled"]), 1.0)
    table.add_row("shm slab windows", timings["shm"], int(n_rows / timings["shm"]), speedup)
    emit_result(
        "shm",
        table.render(),
        data={
            "scale": scale.name,
            "rows": n_rows,
            "workers": workers,
            "cpu_count": cpu_count,
            "pickled_seconds": timings["pickled"],
            "shm_seconds": timings["shm"],
            "speedup": speedup,
            "acceptance_speedup": ACCEPTANCE_SPEEDUP,
        },
    )

    if cpu_count < ACCEPTANCE_WORKERS:
        pytest.skip(
            f"{ACCEPTANCE_WORKERS}-worker acceptance bar needs >= "
            f"{ACCEPTANCE_WORKERS} CPUs (host has {cpu_count}); numbers recorded"
        )
    if scale.name == "smoke":
        pytest.skip("acceptance bar asserted at standard scale and above; numbers recorded")
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"shm speedup {speedup:.2f}x at {workers} workers is below the "
        f"{ACCEPTANCE_SPEEDUP}x acceptance bar"
    )


def test_shm_stream_rss_bounded(shm_setup, scale):
    """Streaming through the slab ring must not materialize the stream.

    Chunks are produced lazily; the parent may hold the slab ring, the
    in-flight transform buffers, and folded partials — but never the
    whole stream's feature matrix. RSS growth is asserted below half of
    the full materialized matrix (with a fixed allocator-noise floor).
    """
    pipeline, archive = shm_setup
    n_rows = bench_rows(scale)
    chunk_rows = 2_000
    n_chunks = n_rows // chunk_rows

    def chunk_stream():
        for index in range(n_chunks):
            yield make_wide(chunk_rows, seed=100 + index)

    with ParallelValidator(
        archive, workers=2, chunk_size=CHUNK_SIZE, use_shm=True
    ).warm() as parallel:
        n_features = parallel._transform_plan().n_features
        before = rss_bytes()
        summary = parallel.validate_stream(chunk_stream())
        growth = max(0, rss_bytes() - before)
        assert parallel.shm_stats["shm_stream_shards"] > 0
    assert summary.n_rows == n_chunks * chunk_rows

    full_matrix_bytes = n_chunks * chunk_rows * n_features * 8
    ceiling = max(full_matrix_bytes // 2, 96 * 1024 * 1024)
    table = ResultTable(
        f"Shared memory — streaming RSS ({n_chunks} x {chunk_rows} rows, "
        f"{n_features} features, scale={scale.name})",
        ["metric", "MiB"],
    )
    table.add_row("full matrix (if materialized)", full_matrix_bytes / 2**20)
    table.add_row("observed RSS growth", growth / 2**20)
    table.add_row("ceiling", ceiling / 2**20)
    emit_result(
        "shm_rss",
        table.render(),
        data={
            "scale": scale.name,
            "rows": n_chunks * chunk_rows,
            "full_matrix_bytes": full_matrix_bytes,
            "rss_growth_bytes": growth,
            "ceiling_bytes": ceiling,
        },
    )
    assert growth <= ceiling, (
        f"RSS grew {growth / 2**20:.0f} MiB streaming through slabs — "
        f"beyond the {ceiling / 2**20:.0f} MiB bound; the stream leaked"
    )
