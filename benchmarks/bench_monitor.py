"""Drift-monitor benchmarks: overhead on the streaming path + detection.

Acceptance bars:

* ``test_monitor_overhead`` — attaching a :class:`DriftMonitor` to the
  streaming validator costs ≤ 5% wall-clock on the Figure-4 serving
  slab (the monitor reuses the preprocessed matrix each chunk already
  paid for; its own work is one ``searchsorted`` pass per column);
* ``test_drift_detection`` — an out-of-distribution stream raises
  drift on the monitor while the in-distribution stream stays quiet,
  with the full :class:`MonitorSnapshot` JSON emitted alongside the
  machine-readable ``BENCH_*.json`` records.

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import TaxiGenerator
from repro.experiments.reporting import ResultTable
from repro.utils.timing import Timer

from benchmarks.conftest import emit_result

SLAB_DIMS = 18
CHUNK_ROWS = 8192


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


@pytest.fixture(scope="module")
def monitor_setup(scale):
    generator = TaxiGenerator()
    columns = TaxiGenerator.dimension_subsets()[SLAB_DIMS]
    train = generator.generate_clean(scale.train_rows, rng=1).select(columns)
    config = DQuaGConfig(hidden_dim=64, epochs=max(scale.epochs // 4, 2), seed=0)
    pipeline = DQuaG(config).fit(train, rng=0, knowledge_edges=[
        (a, b) for a, b in generator.knowledge_edges() if a in columns and b in columns
    ])
    n_rows = 200_000 if os.environ.get("REPRO_FULL_SCALE") else 50_000
    # Pre-transform the stream once: both timed paths then validate the
    # exact same matrices and the delta is the monitor alone.
    chunks = []
    produced = 0
    index = 0
    while produced < n_rows:
        size = min(CHUNK_ROWS, n_rows - produced)
        table = generator.generate_clean(size, rng=1000 + index).select(columns)
        chunks.append(pipeline.preprocessor.transform(table))
        produced += size
        index += 1
    return generator, columns, pipeline, chunks, n_rows


def test_monitor_overhead(monitor_setup, scale):
    """Acceptance: the monitor costs ≤ 5% on the streaming slab."""
    _, _, pipeline, chunks, n_rows = monitor_setup

    def run_without():
        return pipeline.streaming_validator(chunk_size=CHUNK_ROWS).validate_stream(chunks)

    def run_with():
        monitor = pipeline.monitor(window_chunks=32)
        return pipeline.streaming_validator(
            chunk_size=CHUNK_ROWS, monitor=monitor
        ).validate_stream(chunks)

    run_without()  # warm buffers/caches once
    bare_seconds = _best_of(run_without)
    monitored_seconds = _best_of(run_with)
    overhead = monitored_seconds / bare_seconds - 1.0

    table = ResultTable(
        f"Monitor — streaming overhead ({n_rows} rows, {SLAB_DIMS} dims, "
        f"scale={scale.name})",
        ["path", "seconds", "rows/s"],
    )
    table.add_row("streaming (bare)", bare_seconds, int(n_rows / bare_seconds))
    table.add_row("streaming + monitor", monitored_seconds, int(n_rows / monitored_seconds))
    table.add_note(f"monitor overhead: {overhead:+.2%} (bar: <= 5%)")
    emit_result(
        "monitor_overhead",
        table.render(),
        data={
            "scale": scale.name,
            "rows": n_rows,
            "dims": SLAB_DIMS,
            "bare_seconds": bare_seconds,
            "monitored_seconds": monitored_seconds,
            "overhead": overhead,
        },
    )
    if scale.name == "smoke":
        # On a CI-sized slab the 5% margin is tens of milliseconds — a
        # noisy-neighbor blip, not a code defect, can cross it. Same
        # precedent as bench_sharding's throughput bar.
        pytest.skip("overhead bar asserted at standard scale and above; numbers recorded")
    assert overhead <= 0.05, f"monitor overhead {overhead:.2%} exceeds the 5% bar"


def test_drift_detection(monitor_setup, scale):
    """In-distribution stays quiet; a shifted stream raises DriftAlerts."""
    generator, columns, pipeline, _, _ = monitor_setup
    monitor = pipeline.monitor(window_chunks=16)
    streaming = pipeline.streaming_validator(chunk_size=4096, monitor=monitor)

    clean = generator.generate_clean(20_000, rng=77).select(columns)
    streaming.validate_table(clean)
    clean_snapshot = monitor.snapshot()

    # Shift every numeric column by 3 clean standard deviations — the
    # kind of covariate shift TFDV-style skew checks are built for.
    shifted = generator.generate_clean(20_000, rng=78).select(columns)
    for spec in shifted.schema:
        if not spec.is_categorical:
            values = shifted.column(spec.name)
            shifted = shifted.with_column(
                spec.name, values + 3.0 * float(np.nanstd(values))
            )
    monitor.reset()
    streaming.validate_table(shifted)
    drift_snapshot = monitor.snapshot()

    table = ResultTable(
        f"Monitor — drift detection (scale={scale.name})",
        ["stream", "drift", "drifted columns", "alerts"],
    )
    table.add_row(
        "in-distribution", clean_snapshot.has_drift,
        len(clean_snapshot.drifted_columns), clean_snapshot.total_alerts,
    )
    table.add_row(
        "shifted (+3 sigma)", drift_snapshot.has_drift,
        len(drift_snapshot.drifted_columns), drift_snapshot.total_alerts,
    )
    table.add_note(drift_snapshot.summary())
    emit_result(
        "monitor_drift",
        table.render(),
        data={
            "scale": scale.name,
            "clean_drift": clean_snapshot.has_drift,
            "clean_alerts": clean_snapshot.total_alerts,
            "shifted_drift": drift_snapshot.has_drift,
            "shifted_alerts": drift_snapshot.total_alerts,
            "drifted_columns": drift_snapshot.drifted_columns,
            "snapshot": drift_snapshot.to_dict(),
        },
    )
    assert not clean_snapshot.has_drift, "clean stream must not raise drift"
    assert drift_snapshot.has_drift and drift_snapshot.total_alerts > 0
