"""Sharded-validation benchmarks — parity and multi-worker throughput.

Quantifies what :mod:`repro.runtime.sharding` buys on the paper's
Figure-4 serving workload (NY Taxi, 18 dims):

* ``test_sharded_parity_on_figure4_slab`` — the merged sharded report is
  bit-identical to the one-shot path across 1/2/4 shards;
* ``test_sharded_throughput`` — rows/s of the single-process streaming
  path vs :class:`ParallelValidator` at increasing worker counts. The
  ≥1.8× @ 4-workers acceptance bar is asserted on hosts with ≥4 CPUs at
  standard scale or above (below that the measurement is recorded but
  the bar is skipped — a 1-core runner cannot exhibit process
  parallelism).

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass. Machine-readable
snapshots land in ``results/BENCH_sharding_*.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import TaxiGenerator
from repro.experiments.reporting import ResultTable
from repro.runtime.sharding import ParallelValidator

from benchmarks.conftest import emit_result

SLAB_ROWS = 10_000
SLAB_DIMS = 18
ACCEPTANCE_WORKERS = 4
ACCEPTANCE_SPEEDUP = 1.8


@pytest.fixture(scope="module")
def sharding_setup(scale, tmp_path_factory):
    generator = TaxiGenerator()
    columns = TaxiGenerator.dimension_subsets()[SLAB_DIMS]
    train = generator.generate_clean(scale.train_rows, rng=1).select(columns)
    slab = generator.generate_clean(SLAB_ROWS, rng=2).select(columns)
    config = DQuaGConfig(hidden_dim=64, epochs=max(scale.epochs // 4, 2), seed=0)
    pipeline = DQuaG(config).fit(train, rng=0, knowledge_edges=[
        (a, b) for a, b in generator.knowledge_edges() if a in columns and b in columns
    ])
    archive = tmp_path_factory.mktemp("sharding") / "taxi18.npz"
    pipeline.save(archive)
    return generator, columns, pipeline, slab, archive


def test_sharded_parity_on_figure4_slab(sharding_setup, scale):
    """Acceptance: sharded == one-shot, bit for bit, for any shard count."""
    _, _, pipeline, slab, archive = sharding_setup
    one_shot = pipeline.validate(slab)
    rows = []
    with ParallelValidator(archive, workers=2) as parallel:
        for shards in (1, 2, 4):
            report = parallel.validate_table(slab, shards=shards, keep_cell_errors=True)
            identical = bool(
                np.array_equal(report.row_flags, one_shot.row_flags)
                and np.array_equal(report.cell_flags, one_shot.cell_flags)
                and np.array_equal(report.sample_errors, one_shot.sample_errors)
                and np.array_equal(report.cell_errors, one_shot.cell_errors)
                and report.threshold == one_shot.threshold
                and report.is_problematic == one_shot.is_problematic
            )
            rows.append((shards, identical))

    table = ResultTable(
        f"Sharding — parity vs one-shot on the Figure-4 slab "
        f"({SLAB_ROWS} rows, {SLAB_DIMS} dims, scale={scale.name})",
        ["shards", "bit-identical"],
    )
    for shards, identical in rows:
        table.add_row(shards, identical)
    emit_result(
        "sharding_parity",
        table.render(),
        data={
            "scale": scale.name,
            "rows": SLAB_ROWS,
            "dims": SLAB_DIMS,
            "parity": {str(shards): identical for shards, identical in rows},
        },
    )
    assert all(identical for _, identical in rows)


def test_sharded_throughput(sharding_setup, scale):
    """Single-process streaming vs multi-worker sharded validation."""
    generator, columns, pipeline, _, archive = sharding_setup
    if os.environ.get("REPRO_FULL_SCALE"):
        n_rows = 400_000
    elif scale.name == "smoke":
        n_rows = 40_000
    else:
        n_rows = 160_000
    big = generator.generate_clean(n_rows, rng=7).select(columns)
    cpu_count = os.cpu_count() or 1

    streaming = pipeline.streaming_validator(chunk_size=8192)
    start = time.perf_counter()
    single_summary = streaming.validate_table(big)
    single_seconds = time.perf_counter() - start

    worker_counts = [w for w in (2, ACCEPTANCE_WORKERS) if w <= cpu_count]
    measured: dict[int, float] = {}
    for workers in worker_counts:
        with ParallelValidator(archive, workers=workers).warm() as parallel:
            start = time.perf_counter()
            summary = parallel.validate_table(big)
            measured[workers] = time.perf_counter() - start
        assert summary.n_flagged == single_summary.n_flagged
        np.testing.assert_array_equal(summary.flagged_rows, single_summary.flagged_rows)

    table = ResultTable(
        f"Sharding — throughput on the Figure-4 workload "
        f"({n_rows} rows, {SLAB_DIMS} dims, {cpu_count} CPUs, scale={scale.name})",
        ["path", "seconds", "rows/s", "speedup"],
    )
    table.add_row("streaming (1 proc)", single_seconds, int(n_rows / single_seconds), 1.0)
    for workers, seconds in measured.items():
        table.add_row(
            f"sharded ({workers} workers)",
            seconds,
            int(n_rows / seconds),
            single_seconds / seconds,
        )
    emit_result(
        "sharding_throughput",
        table.render(),
        data={
            "scale": scale.name,
            "rows": n_rows,
            "dims": SLAB_DIMS,
            "cpu_count": cpu_count,
            "single_seconds": single_seconds,
            "sharded_seconds": {str(w): s for w, s in measured.items()},
            "speedups": {str(w): single_seconds / s for w, s in measured.items()},
        },
    )

    if cpu_count < ACCEPTANCE_WORKERS:
        pytest.skip(
            f"{ACCEPTANCE_WORKERS}-worker acceptance bar needs >= "
            f"{ACCEPTANCE_WORKERS} CPUs (host has {cpu_count}); numbers recorded"
        )
    if scale.name == "smoke":
        pytest.skip("acceptance bar asserted at standard scale and above; numbers recorded")
    speedup = single_seconds / measured[ACCEPTANCE_WORKERS]
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"sharded speedup {speedup:.2f}x at {ACCEPTANCE_WORKERS} workers is below "
        f"the {ACCEPTANCE_SPEEDUP}x acceptance bar"
    )
