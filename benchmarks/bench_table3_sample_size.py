"""Table 3 — accuracy vs validation sample size (§4.5).

Regenerates the sample-size sweep (10 → 1000 rows per batch) on Airbnb,
Bicycle, and NY Taxi, and benchmarks small-batch validation — the regime
the paper identifies as DQuaG's limitation.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_pipeline, get_splits, run_table3
from repro.experiments.sample_size import DEFAULT_SAMPLE_SIZES

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def table3_result(scale):
    result = run_table3(scale=scale, seed=0)
    emit_result("table3", result.render())
    return result


def test_table3_shape_holds(table3_result, benchmark, scale):
    r = table3_result
    for dataset in ("airbnb", "bicycle", "taxi"):
        accuracies = r.accuracies(dataset)
        sizes = sorted(accuracies)
        # Large batches classify near-perfectly (paper: 100% by 500; the
        # 6% cutoff leaves ~1% binomial noise at 500 rows, see
        # EXPERIMENTS.md for the variance analysis).
        for size in sizes:
            if size >= 500:
                assert accuracies[size] >= 0.9, (dataset, size)
        # The trend is upward: the largest size beats the smallest.
        assert accuracies[sizes[-1]] >= accuracies[sizes[0]], dataset
        # Small batches are noticeably weaker than large ones on at least
        # one dataset (the paper's stated limitation) — checked globally
        # below rather than per-dataset to avoid seed sensitivity.
    smallest = min(DEFAULT_SAMPLE_SIZES)
    small_accs = [r.accuracy(d, smallest) for d in ("airbnb", "bicycle", "taxi") if (d, smallest) in r.metrics]
    assert min(small_accs) < 1.0, "10-row batches should not be perfectly classified"

    # Benchmark: validation of a 10-row micro-batch.
    splits = get_splits("airbnb", scale, 0)
    pipeline = get_pipeline("airbnb", scale, 0)
    micro = splits.evaluation.sample(10, rng=11)
    benchmark(lambda: pipeline.validate_batch(micro))
