"""Table 1 — synthetic-error detection (Hotel Booking + Credit Card).

Regenerates the paper's Table 1: accuracy/recall of all seven method
configurations on ordinary (N/S/M) and hidden-conflict errors, and
benchmarks DQuaG's per-batch validation — the operation the table's
protocol runs 100× per scenario.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_pipeline, get_splits, run_table1

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def table1_result(scale):
    result = run_table1(scale=scale, seed=0)
    emit_result("table1", result.render())
    return result


def test_table1_shape_holds(table1_result, benchmark, scale):
    """Assert the paper's qualitative claims, then time batch validation."""
    r = table1_result
    # DQuaG detects every ordinary error family and the hotel conflict.
    for dataset, scenario in [
        ("hotel", "N"), ("hotel", "S"), ("hotel", "M"), ("hotel", "Conflicts"),
        ("credit", "N"), ("credit", "S"), ("credit", "M"),
    ]:
        assert r.accuracy(dataset, scenario, "dquag") >= 0.88, (dataset, scenario)
        assert r.recall(dataset, scenario, "dquag") >= 0.88, (dataset, scenario)
    # The credit conflicts are the subtlest scenarios: the injectors keep
    # every forced marginal deep in-range (EXPERIMENTS.md), which also
    # thins the model's signal — still far above the rule systems' zero.
    for scenario in ("Conflicts-1", "Conflicts-2"):
        assert r.accuracy("credit", scenario, "dquag") >= 0.75, scenario
        assert r.recall("credit", scenario, "dquag") >= 0.6, scenario
        assert r.recall("credit", scenario, "dquag") > r.recall("credit", scenario, "deequ_expert")

    # Expert-tuned rule systems ace ordinary errors...
    for dataset in ("hotel", "credit"):
        for method in ("deequ_expert", "tfdv_expert"):
            acc, rec = r.ordinary_average(dataset, method)
            assert acc >= 0.9 and rec >= 0.9, (dataset, method)
    # ...but are blind to hidden conflicts (recall 0, accuracy ~0.5).
    for dataset, scenario in [("hotel", "Conflicts"), ("credit", "Conflicts-1"), ("credit", "Conflicts-2")]:
        for method in ("deequ_expert", "tfdv_expert"):
            assert r.recall(dataset, scenario, method) <= 0.1, (dataset, scenario, method)
            assert r.accuracy(dataset, scenario, method) <= 0.6, (dataset, scenario, method)

    # Deequ auto is too strict: perfect recall, coin-flip accuracy.
    for dataset in ("hotel", "credit"):
        _, rec = r.ordinary_average(dataset, "deequ_auto")
        acc, _ = r.ordinary_average(dataset, "deequ_auto")
        assert rec == 1.0
        assert acc <= 0.65, dataset

    # TFDV auto misses float-column numeric anomalies on Credit (recall
    # near zero — a small residue can leak through the drift comparator)
    # while catching Hotel's small-int ones: the paper's asymmetry.
    assert r.recall("credit", "N", "tfdv_auto") <= 0.25
    assert r.recall("hotel", "N", "tfdv_auto") >= 0.9

    # Benchmark: one DQuaG batch validation (the protocol's inner loop).
    splits = get_splits("hotel", scale, 0)
    pipeline = get_pipeline("hotel", scale, 0)
    batch = splits.evaluation.sample(splits.batch_size, rng=123)
    benchmark(lambda: pipeline.validate_batch(batch))
