"""Runtime benchmarks — compiled engine vs autograd, streaming throughput.

Quantifies what the ``repro.runtime`` subsystem buys on the paper's
Figure 4 serving workload (NY Taxi, 18 dims, fixed 10k-row slab):

* ``test_engine_speedup`` — compiled :class:`InferenceEngine` vs the
  seed's autograd forward on identical inputs, with flag parity checked;
* ``test_streaming_throughput`` — chunked bounded-memory validation of
  a large table (10⁶ rows under ``REPRO_FULL_SCALE=1``).

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.core.validator import DataQualityValidator
from repro.datasets import TaxiGenerator
from repro.experiments.reporting import ResultTable
from repro.utils.timing import Timer

from benchmarks.conftest import emit_result

SLAB_ROWS = 10_000
SLAB_DIMS = 18


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


@pytest.fixture(scope="module")
def runtime_setup(scale):
    generator = TaxiGenerator()
    columns = TaxiGenerator.dimension_subsets()[SLAB_DIMS]
    train = generator.generate_clean(scale.train_rows, rng=1).select(columns)
    slab = generator.generate_clean(SLAB_ROWS, rng=2).select(columns)
    # The serving model is always the paper-sized one (hidden 64, §4.4):
    # REPRO_SCALE shrinks training cost, not the benchmarked workload.
    config = DQuaGConfig(hidden_dim=64, epochs=max(scale.epochs // 4, 2), seed=0)
    pipeline = DQuaG(config).fit(train, rng=0, knowledge_edges=[
        (a, b) for a, b in generator.knowledge_edges() if a in columns and b in columns
    ])
    return generator, columns, pipeline, slab


def test_engine_speedup(runtime_setup, scale):
    """Acceptance: engine ≥ 3× over the seed autograd path, same flags."""
    _, _, pipeline, slab = runtime_setup
    engine = pipeline.engine
    assert engine is not None
    matrix = pipeline.preprocessor.transform(slab)

    # The seed serving path: autograd forward (both decoders) + report.
    autograd_validator = DataQualityValidator(
        pipeline.model,
        pipeline.preprocessor,
        pipeline.calibration,
        pipeline.config,
        feature_thresholds=pipeline._validator.feature_thresholds,
        feature_scales=pipeline._validator.feature_scales,
        use_engine=False,
    )

    engine.validate_matrix(matrix)  # warm buffers
    autograd_validator.validate_matrix(matrix)
    engine_seconds = _best_of(lambda: engine.validate_matrix(matrix))
    autograd_seconds = _best_of(lambda: autograd_validator.validate_matrix(matrix))
    speedup = autograd_seconds / engine_seconds

    engine_report = engine.validate_matrix(matrix)
    autograd_report = autograd_validator.validate_matrix(matrix)
    flags_identical = bool(
        np.array_equal(engine_report.row_flags, autograd_report.row_flags)
        and np.array_equal(engine_report.cell_flags, autograd_report.cell_flags)
    )
    max_error_delta = float(
        np.abs(engine_report.cell_errors - autograd_report.cell_errors).max()
    )

    table = ResultTable(
        f"Runtime — engine vs autograd on the Figure-4 slab "
        f"({SLAB_ROWS} rows, {SLAB_DIMS} dims, scale={scale.name})",
        ["path", "seconds", "rows/s"],
    )
    table.add_row("autograd (seed)", autograd_seconds, int(SLAB_ROWS / autograd_seconds))
    table.add_row("compiled engine", engine_seconds, int(SLAB_ROWS / engine_seconds))
    table.add_note(f"speedup: {speedup:.2f}x")
    table.add_note(f"flags identical: {flags_identical}; max |Δ cell error| = {max_error_delta:.2e}")
    emit_result(
        "runtime_engine",
        table.render(),
        data={
            "scale": scale.name,
            "rows": SLAB_ROWS,
            "dims": SLAB_DIMS,
            "autograd_seconds": autograd_seconds,
            "engine_seconds": engine_seconds,
            "speedup": speedup,
            "flags_identical": flags_identical,
            "max_error_delta": max_error_delta,
        },
    )

    assert flags_identical
    assert max_error_delta < 1e-10
    assert speedup >= 3.0, f"engine speedup {speedup:.2f}x below the 3x acceptance bar"


def test_streaming_throughput(runtime_setup, scale):
    """Bounded-memory validation of a large table, chunk by chunk."""
    generator, columns, pipeline, _ = runtime_setup
    n_rows = 1_000_000 if os.environ.get("REPRO_FULL_SCALE") else 100_000
    chunk_rows = 8192
    streaming = pipeline.streaming_validator(chunk_size=chunk_rows)

    def chunk_source():
        # Generate chunk-by-chunk: the full table never materializes,
        # mirroring a row-stream from repro.data.io.read_csv_chunks.
        produced = 0
        index = 0
        while produced < n_rows:
            size = min(chunk_rows, n_rows - produced)
            yield generator.generate_clean(size, rng=1000 + index).select(columns)
            produced += size
            index += 1

    start = time.perf_counter()
    summary = streaming.validate_stream(chunk_source())
    elapsed = time.perf_counter() - start

    table = ResultTable(
        f"Runtime — streaming validation throughput (scale={scale.name})",
        ["rows", "chunks", "seconds", "rows/s"],
    )
    table.add_row(summary.n_rows, summary.n_chunks, elapsed, int(summary.n_rows / elapsed))
    table.add_note(f"{summary.summary()}")
    table.add_note(
        "memory: O(chunk × features) — the dense error matrix is never materialized"
    )
    emit_result(
        "runtime_streaming",
        table.render(),
        data={
            "scale": scale.name,
            "rows": summary.n_rows,
            "chunks": summary.n_chunks,
            "seconds": elapsed,
            "rows_per_second": summary.n_rows / elapsed,
            "flagged_fraction": summary.flagged_fraction,
        },
    )

    assert summary.n_rows == n_rows
    assert summary.n_chunks == -(-n_rows // chunk_rows)
    # Clean data: the flag rate stays near the calibrated 1 - percentile.
    assert summary.flagged_fraction < 0.15
