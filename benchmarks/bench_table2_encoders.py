"""Table 2 — encoder-architecture ablation (§4.4).

Regenerates the flagged-error-difference comparison across the five
encoders and benchmarks a forward pass of the paper's GAT+GIN encoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ENCODER_ORDER, get_pipeline, get_splits, run_table2
from repro.nn import Tensor, no_grad

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def table2_result(scale):
    result = run_table2(scale=scale, seed=0)
    emit_result("table2", result.render())
    return result


def test_table2_shape_holds(table2_result, benchmark, scale):
    r = table2_result
    for dataset in ("airbnb", "bicycle"):
        # Every encoder must separate dirty from clean at all.
        for architecture in ENCODER_ORDER:
            assert r.difference(dataset, architecture) > 0, (dataset, architecture)
        # The paper's claim: the learned GAT+GIN encoder is at or near the
        # top — within 20% of the best separating architecture.
        best = max(r.difference(dataset, a) for a in ENCODER_ORDER)
        assert r.difference(dataset, "gat_gin") >= 0.8 * best, dataset

    # Benchmark: GAT+GIN encoder forward over one preprocessed batch.
    splits = get_splits("airbnb", scale, 0)
    pipeline = get_pipeline("airbnb", scale, 0)
    matrix = pipeline.preprocessor.transform(splits.evaluation.sample(512, rng=7))

    def encode():
        with no_grad():
            return pipeline.model.encode(Tensor(matrix))

    benchmark(encode)
