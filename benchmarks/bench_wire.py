"""Wire-codec benchmarks — binary frames vs the JSON tier.

Quantifies what the binary columnar frame codec (:mod:`repro.api.framing`)
buys on the serving boundary for an Airbnb/Playstore-shaped
categorical-heavy slab:

* ``test_frame_ingest_speedup`` — gateway-side ingest decode: the JSON
  tier runs ``json.loads`` + ``Table.from_records`` (one Python object
  per cell); the frame tier runs ``decode_frame`` straight into column
  buffers. Acceptance: **≥ 5×** ingest throughput, decoded tables
  value- and missing-structure-identical. Encode (client) side and wire
  sizes are reported alongside.
* ``test_out_of_core_frame_stream`` — the out-of-core demo: a frame
  file larger than the gateway's whole-body budget streams through
  ``/validate_stream`` on a live gateway whose ``max_body_bytes`` is a
  fraction of the file size — structurally impossible unless both ends
  stay frame-bounded — and the process RSS delta is asserted well below
  the file size.

Speed bars are asserted at standard scale and above; ``REPRO_SCALE=smoke``
(CI) still asserts **parity** — identical decoded tables and stream
verdicts — so CI stays hardware-agnostic. Machine-readable snapshots
land in ``results/BENCH_wire_*.json``.
"""

from __future__ import annotations

import json
import resource

import numpy as np
import pytest

from repro.api import framing
from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.experiments.reporting import ResultTable
from repro.utils.timing import Timer

from benchmarks.conftest import emit_result

SLAB_ROWS = 10_000
N_CATEGORICAL = 12
N_NUMERIC = 2
CARDINALITY = 6
INGEST_SPEEDUP_BAR = 5.0


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def make_schema() -> TableSchema:
    vocabularies = [
        tuple(f"{chr(65 + i)}{chr(65 + j)}_cat{j}" for j in range(CARDINALITY))
        for i in range(N_CATEGORICAL)
    ]
    specs = [
        ColumnSpec(f"c{i}", ColumnKind.CATEGORICAL, f"categorical {i}", categories=vocabularies[i])
        for i in range(N_CATEGORICAL)
    ]
    specs += [ColumnSpec(f"n{i}", ColumnKind.NUMERIC, f"numeric {i}") for i in range(N_NUMERIC)]
    return TableSchema(specs)


def make_table(schema: TableSchema, n_rows: int, seed: int, missing: float = 0.02) -> Table:
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 1.0, n_rows)
    columns: dict[str, np.ndarray] = {}
    for i in range(N_CATEGORICAL):
        vocabulary = np.array(schema[f"c{i}"].categories, dtype=object)
        index = np.minimum(
            (base * CARDINALITY).astype(int) + rng.integers(0, 2, n_rows), CARDINALITY - 1
        )
        column = vocabulary[index]
        column[rng.random(n_rows) < missing] = None
        columns[f"c{i}"] = column
    noisy = base.copy()
    noisy[rng.random(n_rows) < missing] = np.nan
    columns["n0"] = noisy
    for i in range(1, N_NUMERIC):
        columns[f"n{i}"] = 1.0 - base + rng.normal(0.0, 0.01, n_rows)
    return Table(schema, columns)


def _tables_identical(a: Table, b: Table) -> bool:
    if a.schema != b.schema or a.n_rows != b.n_rows:
        return False
    for spec in a.schema:
        left, right = a.column(spec.name), b.column(spec.name)
        if spec.is_numeric:
            if not np.array_equal(
                np.asarray(left).view(np.uint64), np.asarray(right).view(np.uint64)
            ):
                return False
        elif list(left) != list(right):
            return False
    return True


def test_frame_ingest_speedup(scale):
    """Acceptance: frame decode ≥ 5× JSON ingest, identical tables."""
    schema = make_schema()
    slab = make_table(schema, SLAB_ROWS, seed=2)

    json_body = json.dumps({"records": slab.to_records()}).encode("utf-8")
    frame_body = framing.encode_frame(table=slab)

    def json_ingest() -> Table:
        payload = json.loads(json_body)
        return Table.from_records(schema, payload["records"])

    def frame_ingest() -> Table:
        return framing.decode_frame(frame_body, schema=schema).table

    via_json = json_ingest()
    via_frame = frame_ingest()
    parity = _tables_identical(via_json, via_frame) and _tables_identical(via_frame, slab)

    json_seconds = _best_of(json_ingest)
    frame_seconds = _best_of(frame_ingest)
    ingest_speedup = json_seconds / frame_seconds

    json_encode_seconds = _best_of(lambda: json.dumps({"records": slab.to_records()}).encode())
    frame_encode_seconds = _best_of(lambda: framing.encode_frame(table=slab))
    encode_speedup = json_encode_seconds / frame_encode_seconds

    table = ResultTable(
        f"Wire — frame codec vs JSON tier on a categorical-heavy slab "
        f"({SLAB_ROWS} rows, {N_CATEGORICAL} categorical + {N_NUMERIC} numeric, scale={scale.name})",
        ["path", "seconds", "rows/s", "bytes"],
    )
    table.add_row("JSON ingest (loads + from_records)", json_seconds, int(SLAB_ROWS / json_seconds), len(json_body))
    table.add_row("frame ingest (decode_frame)", frame_seconds, int(SLAB_ROWS / frame_seconds), len(frame_body))
    table.add_row("JSON encode (to_records + dumps)", json_encode_seconds, int(SLAB_ROWS / json_encode_seconds), len(json_body))
    table.add_row("frame encode (encode_frame)", frame_encode_seconds, int(SLAB_ROWS / frame_encode_seconds), len(frame_body))
    table.add_note(f"ingest speedup: {ingest_speedup:.2f}x (bar: {INGEST_SPEEDUP_BAR}x)")
    table.add_note(f"encode speedup: {encode_speedup:.2f}x")
    table.add_note(f"wire size: {len(frame_body) / len(json_body):.2%} of JSON")
    table.add_note(f"decoded tables identical: {parity}")
    emit_result(
        "wire_ingest",
        table.render(),
        data={
            "scale": scale.name,
            "rows": SLAB_ROWS,
            "categorical_columns": N_CATEGORICAL,
            "numeric_columns": N_NUMERIC,
            "json_ingest_seconds": json_seconds,
            "frame_ingest_seconds": frame_seconds,
            "json_encode_seconds": json_encode_seconds,
            "frame_encode_seconds": frame_encode_seconds,
            "json_bytes": len(json_body),
            "frame_bytes": len(frame_body),
            "ingest_speedup": ingest_speedup,
            "encode_speedup": encode_speedup,
            "tables_identical": parity,
        },
    )

    # Parity is the CI gate; speed bars apply at standard scale and up.
    assert parity, "frame-decoded table diverged from the JSON-decoded table"
    if scale.name not in ("smoke", "fast"):
        assert ingest_speedup >= INGEST_SPEEDUP_BAR, (
            f"frame ingest speedup {ingest_speedup:.2f}x below the "
            f"{INGEST_SPEEDUP_BAR}x acceptance bar"
        )


def _stream_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band", categories=("lo", "hi")),
        ]
    )


def _stream_chunk(schema: TableSchema, n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def test_out_of_core_frame_stream(scale, tmp_path):
    """A frame file several times the gateway's body budget validates
    through ``/validate_stream`` with bounded memory on both ends."""
    from repro.runtime import ValidationService
    from repro.serve import Client, ValidationGateway

    schema = _stream_schema()
    chunk_rows = 65_536
    n_chunks = 4 if scale.name in ("smoke", "fast") else 16
    config = DQuaGConfig(hidden_dim=16, epochs=2, batch_size=64, seed=0)
    pipeline = DQuaG(config).fit(_stream_chunk(schema, 2000, seed=0), rng=0)

    # Spill the stream chunk by chunk — the full table never exists.
    path = tmp_path / "slab.rprf"
    with framing.FrameFileWriter(path, chunk_rows=chunk_rows) as writer:
        for i in range(n_chunks):
            writer.write(_stream_chunk(schema, chunk_rows, seed=100 + i))
    file_bytes = path.stat().st_size

    # The hard bound: the gateway may not buffer more than a fraction of
    # the file for any single frame/body — oversized requests get 413 —
    # yet the framed stream passes, because each frame stays under it.
    max_body_bytes = file_bytes // 4
    service = ValidationService(capacity=2, shard_workers=0)
    service.add("demo", pipeline)
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    with ValidationGateway(service, port=0, max_body_bytes=max_body_bytes) as gateway:
        client = Client(port=gateway.port)
        with Timer() as timer:
            summary = client.validate_frame_file("demo", path)
    service.close()
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    rss_delta = rss_after - rss_before

    total_rows = n_chunks * chunk_rows
    assert summary.n_rows == total_rows
    assert summary.n_chunks == n_chunks

    # Parity: the same deterministic chunks streamed in-process reach
    # the identical verdict (summary folding is chunk-local).
    local = pipeline.streaming_validator(chunk_size=chunk_rows).validate_stream(
        _stream_chunk(schema, chunk_rows, seed=100 + i) for i in range(n_chunks)
    )
    verdicts_identical = bool(
        local.n_flagged == summary.n_flagged
        and np.array_equal(local.flagged_rows, summary.flagged_rows)
        and local.is_problematic == summary.is_problematic
    )

    table = ResultTable(
        f"Wire — out-of-core framed stream through /validate_stream (scale={scale.name})",
        ["metric", "value"],
    )
    table.add_row("frame file bytes", file_bytes)
    table.add_row("gateway max_body_bytes", max_body_bytes)
    table.add_row("rows validated", total_rows)
    table.add_row("seconds", round(timer.elapsed, 4))
    table.add_row("rows/s", int(total_rows / timer.elapsed))
    table.add_row("peak-RSS delta bytes", rss_delta)
    table.add_note("file is 4x the gateway's whole-body budget — only frame-bounded")
    table.add_note(f"verdict identical to in-process stream: {verdicts_identical}")
    emit_result(
        "wire_out_of_core",
        table.render(),
        data={
            "scale": scale.name,
            "file_bytes": file_bytes,
            "max_body_bytes": max_body_bytes,
            "rows": total_rows,
            "chunks": n_chunks,
            "seconds": timer.elapsed,
            "rss_delta_bytes": rss_delta,
            "verdicts_identical": verdicts_identical,
        },
    )

    assert verdicts_identical, "framed upload changed the stream verdict"
    # Memory stays bounded by chunks, not the file: allow generous slack
    # for allocator noise, but never full-file materialization on the
    # shared client+gateway process.
    assert rss_delta < file_bytes // 2 + 64 * 1024 * 1024, (
        f"RSS grew by {rss_delta} bytes while streaming a {file_bytes}-byte file"
    )
