"""Figure 3 — real-world error detection (Airbnb, Bicycle, Play Store).

Regenerates the accuracy bars of Figure 3 and benchmarks DQuaG batch
validation on the Airbnb pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_pipeline, get_splits, run_figure3
from repro.experiments.realworld import REALWORLD_DATASETS

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def figure3_result(scale):
    result = run_figure3(scale=scale, seed=0)
    emit_result("figure3", result.render())
    return result


def test_figure3_shape_holds(figure3_result, benchmark, scale):
    r = figure3_result
    for dataset in REALWORLD_DATASETS:
        # DQuaG detects the real-world error mixture without tuning.
        assert r.accuracy(dataset, "dquag") >= 0.9, dataset
        assert r.metrics[(dataset, "dquag")].recall == 1.0, dataset
        # Expert modes also do well (they were hand-tuned, §4.3)...
        assert r.accuracy(dataset, "deequ_expert") >= 0.9, dataset
        assert r.accuracy(dataset, "tfdv_expert") >= 0.9, dataset
        # ...while Deequ auto trails DQuaG.
        assert r.accuracy(dataset, "deequ_auto") <= r.accuracy(dataset, "dquag"), dataset

    splits = get_splits("airbnb", scale, 0)
    pipeline = get_pipeline("airbnb", scale, 0)
    batch = splits.evaluation.sample(splits.batch_size, rng=321)
    benchmark(lambda: pipeline.validate_batch(batch))
