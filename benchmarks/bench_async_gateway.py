"""Async-gateway benchmarks — micro-batching throughput under fan-in.

Quantifies what the asyncio transport + :class:`RequestScheduler` buy on
the many-small-requests serving shape the ISSUE targets: a stampede of
concurrent clients each validating a handful of rows. The threaded
gateway spends a thread and a full engine dispatch per request; the
async gateway coalesces the stampede into fused slabs under the
``--batch-window-ms`` latency budget.

* ``test_gateway_fanin_throughput`` — RPS and latency percentiles of
  the threaded gateway vs the async gateway at high client concurrency.
  The >=3x acceptance bar is asserted at standard scale and above on
  multi-core hosts (a smoke run records the numbers but skips the bar —
  the fixed per-request cost dominates at tiny request counts).

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass. Machine-readable
snapshots land in ``results/BENCH_async_gateway.json``.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.experiments.reporting import ResultTable
from repro.runtime import ValidationService
from repro.serve import AsyncGateway, Client, ValidationGateway
from repro.serve.cli import fit_demo_pipeline

from benchmarks.conftest import emit_result
from tests.test_serve import make_batch

ACCEPTANCE_SPEEDUP = 3.0
ROWS_PER_REQUEST = 16


@pytest.fixture(scope="module")
def demo_pipeline():
    return fit_demo_pipeline()


def run_stampede(port: int, n_clients: int, per_client: int, batch) -> dict:
    """Hammer one gateway with ``n_clients`` concurrent clients."""
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def worker():
        client = Client(port=port, timeout=120)
        barrier.wait(timeout=120)
        for _ in range(per_client):
            started = time.perf_counter()
            try:
                client.validate("demo", batch)
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=120)
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - started

    assert not errors, errors[:3]
    n = len(latencies)
    assert n == n_clients * per_client
    latencies.sort()
    return {
        "wall_seconds": wall,
        "rps": n / wall,
        "p50_ms": latencies[n // 2] * 1000.0,
        "p99_ms": latencies[max(0, int(n * 0.99) - 1)] * 1000.0,
        "requests": n,
    }


def test_gateway_fanin_throughput(demo_pipeline, scale):
    """Threaded thread-per-request vs async micro-batched fan-in."""
    cpu_count = os.cpu_count() or 1
    if scale.name == "smoke":
        n_clients, per_client = 32, 3
    else:
        n_clients, per_client = 100, 5
    batch = make_batch(demo_pipeline, ROWS_PER_REQUEST, seed=0)

    measured: dict[str, dict] = {}

    service = ValidationService(capacity=2)
    service.add("demo", demo_pipeline)
    try:
        with ValidationGateway(service, port=0) as gateway:
            measured["threaded"] = run_stampede(gateway.port, n_clients, per_client, batch)
    finally:
        service.close()

    service = ValidationService(capacity=2)
    service.add("demo", demo_pipeline)
    try:
        with AsyncGateway(service, port=0, batch_window_ms=2.0) as gateway:
            measured["async"] = run_stampede(gateway.port, n_clients, per_client, batch)
            sched = gateway.scheduler.stats_snapshot()
            measured["async"]["mean_batch_size"] = sched.mean_batch_size
            measured["async"]["batches"] = sched.batches
    finally:
        service.close()

    speedup = measured["async"]["rps"] / measured["threaded"]["rps"]
    table = ResultTable(
        f"Async gateway — {n_clients} concurrent clients x {per_client} requests "
        f"of {ROWS_PER_REQUEST} rows ({cpu_count} CPUs, scale={scale.name})",
        ["gateway", "RPS", "p50 ms", "p99 ms", "speedup"],
    )
    table.add_row(
        "threaded", f"{measured['threaded']['rps']:.0f}",
        f"{measured['threaded']['p50_ms']:.1f}", f"{measured['threaded']['p99_ms']:.1f}", 1.0,
    )
    table.add_row(
        "async+scheduler", f"{measured['async']['rps']:.0f}",
        f"{measured['async']['p50_ms']:.1f}", f"{measured['async']['p99_ms']:.1f}",
        f"{speedup:.2f}",
    )
    emit_result(
        "async_gateway",
        table.render(),
        data={
            "scale": scale.name,
            "cpu_count": cpu_count,
            "n_clients": n_clients,
            "per_client": per_client,
            "rows_per_request": ROWS_PER_REQUEST,
            "threaded": measured["threaded"],
            "async": measured["async"],
            "speedup": speedup,
        },
    )

    # The stampede must coalesce and the tail must stay bounded at any scale.
    assert measured["async"]["mean_batch_size"] > 1.0
    assert measured["async"]["p99_ms"] < 30_000.0

    if cpu_count < 2:
        pytest.skip("acceptance bar needs a multi-core host; numbers recorded")
    if scale.name == "smoke":
        pytest.skip("acceptance bar asserted at standard scale and above; numbers recorded")
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"async gateway speedup {speedup:.2f}x at {n_clients} clients is below "
        f"the {ACCEPTANCE_SPEEDUP}x acceptance bar"
    )
