"""Design-choice ablations (beyond the paper's Table 2; DESIGN.md §6).

Isolates the weighted validation loss, the feature-graph source, and the
threshold percentile on the hidden-conflict scenario, and benchmarks one
training epoch of the default configuration.
"""

from __future__ import annotations

import pytest

from repro.core import DQuaGModel, DQuaGConfig, Trainer
from repro.experiments import get_splits
from repro.experiments.ablations import run_ablations

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def ablation_result(scale):
    result = run_ablations(scale=scale, seed=0)
    emit_result("ablations", result.render())
    return result


def test_ablations_shape_holds(ablation_result, benchmark, scale):
    r = ablation_result

    # Every variant must separate dirty from clean on hidden conflicts.
    for row in r.rows:
        assert row.separation > 0, (row.ablation, row.variant)

    # Lower threshold percentile → more clean rows flagged (monotone).
    percentiles = r.by_variant("threshold percentile")
    assert percentiles["p90"].clean_flag_rate >= percentiles["p95"].clean_flag_rate
    assert percentiles["p95"].clean_flag_rate >= percentiles["p99"].clean_flag_rate

    # The informed graphs should not lose to the uninformative star.
    graphs = r.by_variant("feature graph")
    informed_best = max(graphs["hybrid (paper)"].separation, graphs["statistics only"].separation)
    assert informed_best >= graphs["star (no inference)"].separation * 0.8

    # Benchmark: one training epoch of the default model.
    splits = get_splits("hotel", scale, 0)
    config = DQuaGConfig(hidden_dim=scale.hidden_dim, epochs=1, seed=0)
    from repro.graph import StatisticalRelationshipInference

    graph = StatisticalRelationshipInference().infer(splits.train)
    model = DQuaGModel(graph, config, rng=0)
    trainer = Trainer(model, config)
    from repro.data import TablePreprocessor

    matrix = TablePreprocessor(splits.train.schema).fit(splits.train).transform(splits.train)
    benchmark.pedantic(lambda: trainer.train(matrix, rng=0, epochs=1), rounds=3, iterations=1)
