"""§4.6 — repair evaluation (Airbnb + Bicycle).

Regenerates the error-rate-before/after comparison and benchmarks one
repair pass over a dirty batch.
"""

from __future__ import annotations

import pytest

from repro.datasets import get_generator
from repro.experiments import get_pipeline, get_splits, run_repair_eval

from benchmarks.conftest import emit_result


@pytest.fixture(scope="module")
def repair_result(scale):
    result = run_repair_eval(scale=scale, seed=0)
    emit_result("repair_eval", result.render())
    return result


def test_repair_shape_holds(repair_result, benchmark, scale):
    r = repair_result
    for dataset in ("airbnb", "bicycle"):
        outcome = r.outcomes[dataset]
        # Repair must cut the error rate by at least half...
        assert outcome.repaired_error_rate < 0.5 * outcome.dirty_error_rate, dataset
        # ...and land near (or below) the clean dataset's own rate.
        assert outcome.repaired_error_rate <= outcome.clean_error_rate + 0.03, dataset
        # The paper's headline: the repaired dataset is classified clean.
        assert outcome.repaired_classified_clean, dataset

    # Benchmark: one validate→repair cycle on a dirty batch.
    splits = get_splits("airbnb", scale, 0)
    pipeline = get_pipeline("airbnb", scale, 0)
    dirty, _ = get_generator("airbnb").generate_dirty(
        splits.evaluation.sample(splits.batch_size, rng=5), rng=6
    )

    def repair_cycle():
        report = pipeline.validate(dirty)
        return pipeline.repair(dirty, report)

    benchmark(repair_cycle)
