"""Declarative rule engine benchmarks: fused-validate overhead + parity.

Acceptance bars:

* ``test_rules_overhead`` — fusing an 8-rule :class:`RuleSet` into
  ``DQuaG.validate`` costs ≤ 5% wall-clock on a categorical-heavy hotel
  slab (rules evaluate over the encoded matrix the validate already
  paid for; each predicate is one vectorized pass per column);
* ``test_rules_parity`` — at every scale, the fused report's GNN fields
  are bit-identical to the rules-off report, and the chunked/streamed
  rule fold matches the one-shot evaluation exactly.

Run with ``REPRO_SCALE=smoke`` for a CI-sized pass.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import HotelBookingGenerator
from repro.experiments.reporting import ResultTable
from repro.rules import RuleSet
from repro.utils.timing import Timer

from benchmarks.conftest import emit_result

#: the advertised bar is measured at exactly this rule count
N_RULES = 8

RULES_DOC = {
    "name": "hotel-bench-checks",
    "rules": [
        {"id": "adr-range", "severity": "error",
         "predicate": {"type": "range", "column": "adr", "min": 0, "max": 1000}},
        {"id": "lead-time-range", "severity": "warn",
         "predicate": {"type": "range", "column": "lead_time", "min": 0, "max": 800}},
        {"id": "adults-nonnegative", "severity": "error",
         "predicate": {"type": "range", "column": "adults", "min": 0}},
        {"id": "adr-present", "severity": "warn",
         "predicate": {"type": "not_null", "column": "adr"}},
        {"id": "meal-known", "severity": "error",
         "predicate": {"type": "in_set", "column": "meal",
                       "values": ["BB", "HB", "FB", "SC"]}},
        {"id": "hotel-known", "severity": "error",
         "predicate": {"type": "in_set", "column": "hotel",
                       "values": ["City Hotel", "Resort Hotel"]}},
        {"id": "adults-vs-babies", "severity": "info",
         "predicate": {"type": "compare", "left": "adults", "op": "ge", "right": "babies"}},
        {"id": "group-has-adults", "severity": "info",
         "predicate": {"type": "conditional",
                       "when": {"type": "in_set", "column": "customer_type",
                                "values": ["Group"]},
                       "then": {"type": "range", "column": "adults", "min": 1}}},
    ],
}


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


@pytest.fixture(scope="module")
def rules_setup(scale):
    generator = HotelBookingGenerator()
    train = generator.generate_clean(scale.train_rows, rng=1)
    config = DQuaGConfig(hidden_dim=64, epochs=max(scale.epochs // 4, 2), seed=0)
    pipeline = DQuaG(config).fit(train, rng=0, knowledge_edges=generator.knowledge_edges())
    ruleset = RuleSet.from_payload(RULES_DOC)
    assert len(ruleset) == N_RULES
    if os.environ.get("REPRO_FULL_SCALE"):
        n_rows = 200_000
    elif scale.name in ("smoke", "fast"):
        n_rows = 10_000
    else:
        n_rows = 50_000
    slab = generator.generate_clean(n_rows, rng=7)
    return pipeline, ruleset, slab


def test_rules_overhead(rules_setup, scale):
    """Acceptance: 8 fused rules cost ≤ 5% over a plain validate."""
    pipeline, ruleset, slab = rules_setup
    plan = ruleset.compile(pipeline.preprocessor)  # compile once, like serving does

    def run_without():
        return pipeline.validate(slab)

    def run_with():
        return pipeline.validate(slab, rules=plan)

    run_with()  # warm buffers + the compiled plan cache once
    bare_seconds = _best_of(run_without)
    fused_seconds = _best_of(run_with)
    overhead = fused_seconds / bare_seconds - 1.0

    table = ResultTable(
        f"Rules — fused validate overhead ({slab.n_rows} rows, "
        f"{N_RULES} rules, scale={scale.name})",
        ["path", "seconds", "rows/s"],
    )
    table.add_row("validate (bare)", bare_seconds, int(slab.n_rows / bare_seconds))
    table.add_row("validate + rules", fused_seconds, int(slab.n_rows / fused_seconds))
    table.add_note(f"rule overhead: {overhead:+.2%} (bar: <= 5%)")
    emit_result(
        "rules_overhead",
        table.render(),
        data={
            "scale": scale.name,
            "rows": slab.n_rows,
            "n_rules": N_RULES,
            "bare_seconds": bare_seconds,
            "fused_seconds": fused_seconds,
            "overhead": overhead,
        },
    )
    if scale.name in ("smoke", "fast"):
        # At CI sizes the 5% margin is single-digit milliseconds — noise,
        # not signal. Same precedent as bench_monitor's overhead bar.
        pytest.skip("overhead bar asserted at standard scale and above; numbers recorded")
    assert overhead <= 0.05, f"rule overhead {overhead:.2%} exceeds the 5% bar"


def test_rules_parity(rules_setup, scale):
    """Fusion is additive and the chunked fold is exact — at every scale."""
    pipeline, ruleset, slab = rules_setup
    sample = slab.slice_rows(0, min(slab.n_rows, 4096))

    plain = pipeline.validate(sample)
    fused = pipeline.validate(sample, rules=ruleset)
    assert plain.rule_report is None
    assert fused.rule_report is not None
    np.testing.assert_array_equal(fused.sample_errors, plain.sample_errors)
    np.testing.assert_array_equal(fused.cell_errors, plain.cell_errors)
    np.testing.assert_array_equal(fused.row_flags, plain.row_flags)
    np.testing.assert_array_equal(fused.cell_flags, plain.cell_flags)
    assert fused.threshold == plain.threshold
    assert fused.is_problematic == plain.is_problematic

    streamed = pipeline.streaming_validator(
        chunk_size=512, keep_cell_errors=True, rules=ruleset
    ).validate_table(sample)
    assert streamed.rule_report is not None
    assert streamed.rule_report.to_dict() == fused.rule_report.to_dict()
    np.testing.assert_array_equal(streamed.cell_flags, fused.cell_flags)
