"""Merge every ``results/BENCH_*.json`` snapshot into one trajectory file.

Each bench run emits a machine-readable ``BENCH_<name>.json`` next to its
rendered table (see :func:`benchmarks.conftest.emit_result`). CI uploads
them as artifacts per job; this collector folds whatever snapshots are
present into a single ``BENCH_trajectory.json`` keyed by bench name, so
the perf trajectory across commits is one file to diff instead of a
directory to walk::

    python benchmarks/collect_bench.py            # writes results/BENCH_trajectory.json
    python benchmarks/collect_bench.py --print    # also pretty-print to stdout

The collector is additive and never fails on partial runs: a missing
snapshot simply isn't in the merge, and a malformed one is recorded
under ``"errors"`` rather than aborting the roll-up.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY_NAME = "BENCH_trajectory.json"


def collect(results_dir: Path = RESULTS_DIR) -> dict:
    """Fold all ``BENCH_*.json`` snapshots into one trajectory payload."""
    benches: dict[str, dict] = {}
    errors: dict[str, str] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_NAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            errors[path.name] = f"{type(exc).__name__}: {exc}"
            continue
        name = payload.get("bench") if isinstance(payload, dict) else None
        if not isinstance(name, str) or not name:
            name = path.stem[len("BENCH_"):]
        benches[name] = payload
    trajectory: dict = {"kind": "bench_trajectory", "n_benches": len(benches), "benches": benches}
    if errors:
        trajectory["errors"] = errors
    return trajectory


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="collect_bench", description="Merge BENCH_*.json snapshots into one trajectory."
    )
    parser.add_argument(
        "--results-dir", type=Path, default=RESULTS_DIR,
        help=f"snapshot directory (default: {RESULTS_DIR})",
    )
    parser.add_argument("--print", dest="show", action="store_true", help="echo the merged payload")
    args = parser.parse_args(argv)

    trajectory = collect(args.results_dir)
    args.results_dir.mkdir(parents=True, exist_ok=True)
    out = args.results_dir / TRAJECTORY_NAME
    out.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"merged {trajectory['n_benches']} bench snapshot(s) -> {out}")
    if args.show:
        print(json.dumps(trajectory, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
