"""Serving validation over HTTP: gateway, client, and raw curl-style calls.

Fits a small pipeline, serves it through the stdlib HTTP gateway on an
ephemeral port, and exercises every ``/v1`` endpoint — including the
chunked streaming one — from the stdlib client::

    PYTHONPATH=src python examples/http_serving.py
"""

from __future__ import annotations

import http.client
import json

import numpy as np

from repro.data import Table
from repro.errors import NumericAnomalyInjector
from repro.runtime import ValidationService
from repro.serve import Client, ValidationGateway
from repro.serve.cli import DEMO_RECORD, fit_demo_pipeline
from repro.utils.logging import configure_demo_logging


def make_holdout(pipeline, n: int = 600) -> Table:
    rng = np.random.default_rng(3)
    x = rng.uniform(0.1, 0.9, n)
    return Table(
        pipeline.preprocessor.schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def main() -> None:
    configure_demo_logging()

    print("fitting demo pipeline...")
    pipeline = fit_demo_pipeline()
    holdout = make_holdout(pipeline)
    dirty, _ = NumericAnomalyInjector(["y"], fraction=0.15).inject(holdout, rng=4)

    service = ValidationService(capacity=4)
    service.add("demo", pipeline)

    # port=0 binds an ephemeral port; a real deployment would run
    # `repro-serve --pipeline demo=model.npz --port 8080` instead.
    with ValidationGateway(service, port=0) as gateway:
        print(f"\ngateway listening on {gateway.url}")
        client = Client(port=gateway.port)

        # 1. Health + registered pipelines.
        print(f"healthz   → {client.healthz()}")

        # 2. Validate: the decoded report carries the same flags,
        #    threshold, and verdict as the in-process call.
        remote = client.validate("demo", dirty)
        local = pipeline.validate(dirty)
        assert (remote.row_flags == local.row_flags).all()
        assert remote.threshold == local.threshold
        print(f"validate  → {remote.summary()}   (identical to in-process)")

        # 3. Repair over the wire: repaired rows come back as records.
        records, summary, _ = client.repair("demo", dirty, iterations=2)
        print(f"repair    → {summary}  ({len(records)} rows returned)")

        # 4. Streaming: chunked NDJSON both ways, bounded memory.
        chunks = (dirty.take(np.arange(i, min(i + 100, dirty.n_rows)))
                  for i in range(0, dirty.n_rows, 100))
        stream = client.validate_stream("demo", chunks)
        print(f"stream    → {stream.summary()}")

        # 5. What curl sends: a bare JSON body, no protocol envelope.
        connection = http.client.HTTPConnection("127.0.0.1", gateway.port)
        connection.request(
            "POST",
            "/v1/pipelines/demo/validate",
            body=json.dumps({"records": [DEMO_RECORD, {"x": 0.5, "y": 9.9, "z": 0.5, "c": "lo"}]}),
            headers={"Content-Type": "application/json"},
        )
        payload = json.loads(connection.getresponse().read())
        connection.close()
        print(f"curl-style → kind={payload['kind']} n_flagged={payload['n_flagged']}")

        # 6. Per-pipeline serving stats.
        stats = client.pipelines()
        print(f"stats     → {stats.pipelines['demo']}")

    service.close()
    print("\ngateway closed.")


if __name__ == "__main__":
    main()
