"""Sharded parallel validation: multi-worker Phase 2 with exact merge.

The §3.2.1 decision rules are row-local, so a large batch can be split
into row shards, validated on worker processes, and merged into the
exact one-shot report. This example fits a small pipeline, then runs:

1. ``DQuaG.validate(table, workers=N)`` — the one-liner;
2. ``ParallelValidator`` directly — explicit control over the pool,
   including bounded-memory streaming from CSV chunks;
3. ``ValidationService.validate_sharded`` — the serving-layer form with
   worker budgeting.

Run with ``PYTHONPATH=src python examples/sharded_validation.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema, read_csv_chunks, write_csv
from repro.runtime import ParallelValidator, ValidationService


def make_table(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def main() -> None:
    print("fitting pipeline...")
    pipeline = DQuaG(DQuaGConfig(hidden_dim=16, epochs=6, batch_size=64)).fit(
        make_table(600, seed=0), rng=0
    )
    batch = make_table(5000, seed=2)

    # 1. The one-liner: shard across 2 worker processes, merge exactly.
    sharded = pipeline.validate(batch, workers=2)
    one_shot = pipeline.validate(batch)
    assert np.array_equal(sharded.row_flags, one_shot.row_flags)
    assert np.array_equal(sharded.cell_errors, one_shot.cell_errors)
    print(f"workers=2 report identical to one-shot: {sharded.summary()}")
    pipeline.close_parallel()

    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "pipeline.npz"
        pipeline.save(archive)

        # 2. Explicit executor over the archive; stream a CSV in chunks.
        csv_path = Path(tmp) / "batch.csv"
        write_csv(batch, csv_path)
        with ParallelValidator(archive, workers=2) as parallel:
            summary = parallel.validate_stream(
                read_csv_chunks(csv_path, batch.schema, chunk_size=1024)
            )
            print(f"sharded CSV stream: {summary.summary()}")

        # 3. The serving layer: per-request worker budgeting.
        with ValidationService(shard_workers=2) as service:
            service.register("demo", archive)
            report = service.validate_sharded("demo", batch, workers=2)
            print(f"service sharded: {report.summary()}")
            print(f"service stats: {service.stats()}")


if __name__ == "__main__":
    main()
