"""Hidden-error detection: where rule-based validation fails.

Reproduces the paper's motivating scenario (§1, §4.2): 'Group' hotel
bookings with zero adults but babies present. Every individual value is
legal — only the combination is impossible — so expert-tuned constraint
systems (Deequ) pass the data while DQuaG's reconstruction error exposes
it.

    python examples/hotel_hidden_errors.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import DeequValidator, TFDVValidator
from repro.core import DQuaG, DQuaGConfig
from repro.datasets import get_generator
from repro.errors import HotelGroupConflictInjector


def main() -> None:
    generator = get_generator("hotel")
    clean = generator.generate_clean(8000, rng=0)
    train, rest = clean.split(0.5, rng=1)
    calibration, holdout = rest.split(0.4, rng=2)

    # Inject the hidden conflict: Group bookings of unaccompanied babies.
    dirty, truth = HotelGroupConflictInjector(fraction=0.2).inject(holdout, rng=3)
    conflict_row = int(np.flatnonzero(truth.row_mask)[0])
    row = dirty.row(conflict_row)
    print("an injected conflict row:")
    print(f"  customer_type={row['customer_type']}, adults={row['adults']:.0f}, babies={row['babies']:.0f}")
    print("  (every value is inside its column's clean range — only the combination is impossible)\n")

    # Rule-based baselines, tuned by an "expert" on the clean data.
    for validator in (DeequValidator("expert"), TFDVValidator("expert")):
        validator.fit(train, rng=0)
        verdict = validator.validate_batch(dirty)
        print(f"{validator.name:13s} → problematic={verdict.is_problematic} "
              f"(violation rate {verdict.score:.2%})")

    # DQuaG learns the joint distribution and sees the conflict.
    pipeline = DQuaG(DQuaGConfig(epochs=15, hidden_dim=32)).fit(
        train, rng=0, knowledge_edges=generator.knowledge_edges(), calibration_table=calibration
    )
    report = pipeline.validate(dirty)
    print(f"{'dquag':13s} → problematic={report.is_problematic} "
          f"(flagged fraction {report.flagged_fraction:.2%})")

    flagged = set(report.flagged_rows.tolist())
    conflicts = set(np.flatnonzero(truth.row_mask).tolist())
    print(f"\nDQuaG flags {len(flagged & conflicts)}/{len(conflicts)} of the injected conflict rows")


if __name__ == "__main__":
    main()
