"""Using DQuaG on your own tabular data.

Demonstrates the full bring-your-own-data path: declare a schema, wrap
your columns in a Table, fit the pipeline (statistics-only feature
graph — no curated knowledge needed), persist the trained model, and
reload it for later validation runs.

    python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema


def make_orders(n: int, seed: int) -> Table:
    """A toy e-commerce orders table with learnable structure."""
    rng = np.random.default_rng(seed)
    quantity = rng.integers(1, 20, n).astype(float)
    unit_price = np.round(np.exp(rng.normal(3.0, 0.6, n)), 2)
    total = np.round(quantity * unit_price * rng.uniform(0.95, 1.0, n), 2)  # small discounts
    tier = np.where(total > 400, "gold", np.where(total > 120, "silver", "bronze"))
    schema = TableSchema(
        [
            ColumnSpec("quantity", ColumnKind.NUMERIC, "units ordered"),
            ColumnSpec("unit_price", ColumnKind.NUMERIC, "price per unit, USD"),
            ColumnSpec("total", ColumnKind.NUMERIC, "order total after discount"),
            ColumnSpec("tier", ColumnKind.CATEGORICAL, "customer tier derived from spend",
                       categories=("bronze", "silver", "gold")),
        ]
    )
    return Table(schema, {"quantity": quantity, "unit_price": unit_price, "total": total, "tier": tier})


def main() -> None:
    train = make_orders(4000, seed=0)
    calibration = make_orders(1500, seed=1)

    # No knowledge edges: the statistical provider infers the feature
    # graph from pairwise association alone.
    config = DQuaGConfig(epochs=30, hidden_dim=32, feature_embedding_dim=4)
    pipeline = DQuaG(config).fit(train, rng=0, calibration_table=calibration)
    print(f"inferred feature graph edges: {pipeline.graph.edges}")

    # Persist and reload (e.g. train offline, validate in a service).
    model_path = Path(tempfile.mkdtemp(prefix="dquag_model_")) / "orders.npz"
    pipeline.save(model_path)
    service = DQuaG().load_weights(model_path, train)
    print(f"model saved to {model_path} and reloaded")

    # New data arrives with a relational corruption: customer tiers that
    # contradict the spend that defines them (a hidden error — every value
    # is individually legal, only the combination is wrong).
    incoming = make_orders(1000, seed=7)
    corrupted = incoming.copy()
    tiers = corrupted["tier"].copy()
    bad_rows = np.random.default_rng(8).choice(
        np.flatnonzero(corrupted["total"] <= 120), size=150, replace=False
    )
    for row in bad_rows:
        tiers[row] = "gold"  # bronze-level spend labeled as top tier
    corrupted = corrupted.with_column("tier", tiers)

    verdict_clean = service.validate_batch(incoming)
    verdict_bad = service.validate_batch(corrupted)
    print(f"\nincoming clean batch   → problematic={verdict_clean.is_problematic} "
          f"({verdict_clean.score:.2%} rows flagged)")
    print(f"incoming corrupt batch → problematic={verdict_bad.is_problematic} "
          f"({verdict_bad.score:.2%} rows flagged)")

    flagged = set(verdict_bad.flagged_rows.tolist())
    print(f"detection recall on mislabeled tiers: "
          f"{len(flagged & set(bad_rows.tolist())) / len(bad_rows):.1%}")


if __name__ == "__main__":
    main()
