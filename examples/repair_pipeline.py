"""End-to-end repair of a real-world-style dirty dataset (§4.6).

Loads the Airbnb simulator's (clean, dirty) pair, repairs the dirty
table with the repair decoder, and writes before/after CSVs so the
changes can be inspected.

    python examples/repair_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.data import write_csv
from repro.datasets import get_generator


def main() -> None:
    generator = get_generator("airbnb")
    clean = generator.generate_clean(10000, rng=0)
    train, rest = clean.split(0.4, rng=1)
    calibration, holdout = rest.split(0.3, rng=2)
    dirty, truth = generator.generate_dirty(holdout, rng=3)
    print(f"dirty dataset: {truth.n_dirty_rows}/{dirty.n_rows} rows carry injected errors "
          f"({truth.error_rate():.2%})")

    pipeline = DQuaG(DQuaGConfig(epochs=15, hidden_dim=32)).fit(
        train, rng=0, knowledge_edges=generator.knowledge_edges(), calibration_table=calibration
    )

    clean_rate = pipeline.validate(holdout).flagged_fraction
    report = pipeline.validate(dirty)
    repaired, summary = pipeline.repair(dirty, report, iterations=3)
    after = pipeline.validate(repaired)

    print(f"\nerror rate (flagged rows): dirty {report.flagged_fraction:.2%} "
          f"→ repaired {after.flagged_fraction:.2%} (clean reference {clean_rate:.2%})")
    print(f"repaired data classified clean: {not after.is_problematic}")
    print(f"cells repaired: {summary.n_cells_repaired}, by column: {summary.repairs_by_column}")

    # Show a concrete repaired price glitch.
    price_column = dirty.schema.index_of("price")
    price_fixed = np.flatnonzero(
        report.cell_flags[:, price_column] & (dirty["price"] != repaired["price"])
    )
    if price_fixed.size:
        i = int(price_fixed[0])
        print(f"\nexample: row {i} price {dirty['price'][i]:.0f} → {repaired['price'][i]:.0f} "
              f"({dirty['room_type'][i]} in {dirty['neighbourhood_group'][i]})")

    out_dir = Path(tempfile.mkdtemp(prefix="dquag_repair_"))
    write_csv(dirty, out_dir / "airbnb_dirty.csv")
    write_csv(repaired, out_dir / "airbnb_repaired.csv")
    print(f"\nwrote before/after CSVs to {out_dir}")


if __name__ == "__main__":
    main()
