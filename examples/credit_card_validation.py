"""Credit-card application screening with both hidden-conflict families.

Reproduces the paper's Credit Card scenario (§4.1.2): employment spans
exceeding the applicant's lifetime (Conflicts-1) and elite education +
advanced occupation paired with minimal income (Conflicts-2). Shows
row-level and cell-level pinpointing.

    python examples/credit_card_validation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import get_generator
from repro.errors import (
    CreditEmploymentBeforeBirthInjector,
    CreditIncomeEducationConflictInjector,
)
from repro.metrics import row_detection_metrics


def main() -> None:
    generator = get_generator("credit")
    clean = generator.generate_clean(8000, rng=0)
    train, rest = clean.split(0.5, rng=1)
    calibration, holdout = rest.split(0.4, rng=2)

    pipeline = DQuaG(DQuaGConfig(epochs=15, hidden_dim=32)).fit(
        train, rng=0, knowledge_edges=generator.knowledge_edges(), calibration_table=calibration
    )

    scenarios = {
        "Conflicts-1 (employed before birth)": CreditEmploymentBeforeBirthInjector(fraction=0.2),
        "Conflicts-2 (elite career, minimal income)": CreditIncomeEducationConflictInjector(fraction=0.2),
    }
    for name, injector in scenarios.items():
        dirty, truth = injector.inject(holdout, rng=5)
        report = pipeline.validate(dirty)
        detection = row_detection_metrics(
            np.flatnonzero(truth.row_mask), report.flagged_rows, dirty.n_rows
        )
        print(f"\n=== {name} ===")
        print(f"verdict: {report.summary()}")
        print(f"row detection vs ground truth: precision={detection.precision:.2f} "
              f"recall={detection.recall:.2f}")

        # Inspect one detected conflict.
        hits = np.flatnonzero(truth.row_mask & report.row_flags)
        if hits.size:
            row_index = int(hits[0])
            row = dirty.row(row_index)
            print(f"example flagged application (row {row_index}):")
            print(f"  DAYS_BIRTH={row['DAYS_BIRTH']:.0f}  DAYS_EMPLOYED={row['DAYS_EMPLOYED']:.0f}")
            print(f"  education={row['NAME_EDUCATION_TYPE']!r}  occupation={row['OCCUPATION_TYPE']!r}")
            print(f"  income={row['AMT_INCOME_TOTAL']:.0f}")
            print(f"  model blames features: {report.flagged_features_of(row_index)}")


if __name__ == "__main__":
    main()
