"""Serving-layer tour: compiled engine, streaming, multi-pipeline service.

Phase 2 is the hot path of the paper's framework — this example shows
the three runtime pieces added on top of the training stack::

    python examples/runtime_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import get_generator
from repro.errors import NumericAnomalyInjector
from repro.runtime import ValidationService
from repro.utils.logging import configure_demo_logging
from repro.utils.timing import Timer


def fit_pipeline(dataset: str, rows: int = 3000) -> tuple[DQuaG, object]:
    generator = get_generator(dataset)
    clean = generator.generate_clean(rows, rng=0)
    train, holdout = clean.split(0.6, rng=1)
    config = DQuaGConfig(epochs=8, hidden_dim=32)
    pipeline = DQuaG(config).fit(train, rng=0, knowledge_edges=generator.knowledge_edges())
    return pipeline, holdout


def main() -> None:
    configure_demo_logging()

    # 1. Train two independent pipelines (two "tenants").
    hotel, hotel_holdout = fit_pipeline("hotel")
    taxi, taxi_holdout = fit_pipeline("taxi")

    # 2. The compiled engine is wired in automatically: validate() runs
    #    pure-NumPy kernels, no autograd graph.
    print(f"\nhotel serving engine: {hotel.engine!r}")
    with Timer() as timer:
        report = hotel.validate(hotel_holdout)
    print(f"one-shot validate: {report.summary()}  ({timer.elapsed * 1000:.0f} ms)")

    # 3. Streaming: bounded-memory validation in chunks. On a 1M-row
    #    table the dense error matrix never materializes.
    streaming = hotel.streaming_validator(chunk_size=256)
    summary = streaming.validate_table(hotel_holdout)
    print(f"streaming validate: {summary.summary()}")

    # 4. A ValidationService fronts many saved pipelines with an LRU
    #    cache and a thread pool. Archives are self-contained — loading
    #    needs no clean table.
    with tempfile.TemporaryDirectory() as tmp:
        hotel.save(Path(tmp) / "hotel.npz")
        taxi.save(Path(tmp) / "taxi.npz")

        dirty_hotel, _ = NumericAnomalyInjector(["adr"], fraction=0.3).inject(hotel_holdout, rng=2)
        with ValidationService(capacity=2, max_workers=4) as service:
            service.register("hotel", Path(tmp) / "hotel.npz")
            service.register("taxi", Path(tmp) / "taxi.npz")
            reports = service.validate_many(
                [
                    ("hotel", hotel_holdout),
                    ("hotel", dirty_hotel),
                    ("taxi", taxi_holdout),
                ]
            )
            print("\nservice verdicts:")
            for label, rep in zip(["hotel clean", "hotel dirty", "taxi clean"], reports):
                print(f"  {label:12s} → {rep.summary()}")
            print(f"service stats: {service.stats()}")


if __name__ == "__main__":
    main()
