"""Continuous drift monitoring over the serving stack.

A fitted pipeline freezes its clean training distribution as a
monitoring baseline; a :class:`DriftMonitor` then watches everything the
pipeline validates and raises :class:`DriftAlert`s when the data shifts.
This example shows all three layers:

1. ``pipeline.monitor()`` — the in-process monitor riding the
   streaming validator (clean traffic quiet, shifted traffic alerts);
2. ``ValidationService`` — per-pipeline monitors updated automatically
   by every validate call;
3. the HTTP gateway — ``GET /v1/pipelines/{name}/monitor`` and the
   Prometheus ``GET /v1/metrics`` exposition.

Run with ``PYTHONPATH=src python examples/drift_monitoring.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.runtime import ValidationService
from repro.serve import Client, ValidationGateway


def make_table(n: int, seed: int, shift: float = 0.0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x + shift,
            "y": 2.0 * (x + shift) + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def main() -> None:
    print("fitting a small pipeline (the baseline is frozen at fit time)...")
    config = DQuaGConfig(hidden_dim=16, epochs=8, batch_size=64)
    pipeline = DQuaG(config).fit(make_table(600, seed=0), rng=0)

    # -- 1. in-process: monitor + streaming validator ----------------------
    monitor = pipeline.monitor(window_chunks=16)
    streaming = pipeline.streaming_validator(chunk_size=256, monitor=monitor)

    print("\nstreaming in-distribution chunks...")
    streaming.validate_table(make_table(1500, seed=1))
    print("  ", monitor.snapshot().summary())

    print("streaming a shifted distribution (x + 0.5)...")
    streaming.validate_table(make_table(1500, seed=2, shift=0.5))
    snapshot = monitor.snapshot()
    print("  ", snapshot.summary())
    for alert in snapshot.alerts:
        print("   ALERT:", alert.message)

    # -- 2. the serving layer ---------------------------------------------
    print("\nserving with per-pipeline monitors...")
    service = ValidationService(capacity=4, monitor_window=16)
    service.add("demo", pipeline)
    service.validate("demo", make_table(400, seed=3))
    print("  ", service.monitor_snapshot("demo").summary())

    # -- 3. over HTTP -------------------------------------------------------
    with ValidationGateway(service, port=0) as gateway:
        client = Client(port=gateway.port)
        for i in range(4):
            client.validate("demo", make_table(300, seed=10 + i, shift=0.5))
        snapshot = client.monitor("demo")
        print("\nGET /v1/pipelines/demo/monitor ->", snapshot.summary())
        print("drifted columns:", snapshot.drifted_columns)
        metrics = client.metrics()
        print("\nGET /v1/metrics (drift lines):")
        for line in metrics.splitlines():
            if "drift" in line and not line.startswith("#"):
                print("  ", line)
    service.close()


if __name__ == "__main__":
    main()
