"""Declarative rules fused with GNN validation.

A JSON rule set expresses the hard domain constraints the learned model
cannot know ("x stays in [0, 1]", "z is never missing", "c is lo or
hi"), compiles to vectorized evaluators over the encoded matrix, and
fuses its verdicts into the same :class:`ValidationReport` the GNN
produces — additively, with per-cell provenance. This example shows the
whole surface:

1. ``pipeline.validate(table, rules=...)`` — one fused report, GNN
   flags bit-identical to a rules-off run;
2. ``StreamingValidator`` — chunked evaluation folds to the exact same
   rule report;
3. ``ValidationService`` + the HTTP gateway — ``PUT/GET/DELETE
   /v1/pipelines/{name}/rules`` with eager 422-on-registration
   compilation;
4. ``RuleSetValidator`` — the same rules as a stand-alone baseline.

Run with ``PYTHONPATH=src python examples/rule_validation.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.data import ColumnKind, ColumnSpec, Table, TableSchema
from repro.exceptions import GatewayError
from repro.rules import RuleSet
from repro.runtime import ValidationService
from repro.serve import Client, ValidationGateway

RULES = {
    "name": "demo-checks",
    "rules": [
        {"id": "x-range", "severity": "error",
         "predicate": {"type": "range", "column": "x", "min": 0.0, "max": 1.0}},
        {"id": "z-present", "severity": "warn",
         "predicate": {"type": "not_null", "column": "z"}},
        {"id": "c-known", "severity": "error",
         "predicate": {"type": "in_set", "column": "c", "values": ["lo", "hi"]}},
        {"id": "y-above-x", "severity": "info",
         "predicate": {"type": "compare", "left": "y", "op": "ge", "right": "x"}},
    ],
}


def make_table(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 0.9, n)
    schema = TableSchema(
        [
            ColumnSpec("x", ColumnKind.NUMERIC, "driver"),
            ColumnSpec("y", ColumnKind.NUMERIC, "2x + noise"),
            ColumnSpec("z", ColumnKind.NUMERIC, "1 - x + noise"),
            ColumnSpec("c", ColumnKind.CATEGORICAL, "band of x", categories=("lo", "hi")),
        ]
    )
    return Table(
        schema,
        {
            "x": x,
            "y": 2.0 * x + rng.normal(0, 0.01, n),
            "z": 1.0 - x + rng.normal(0, 0.01, n),
            "c": np.where(x > 0.5, "hi", "lo"),
        },
    )


def make_dirty(n: int, seed: int) -> Table:
    table = make_table(n, seed)
    x = np.array(table.column("x"), dtype=np.float64)
    z = np.array(table.column("z"), dtype=np.float64)
    c = np.array(table.column("c"), dtype=object)
    x[::29] = 7.5        # violates x-range
    z[::31] = np.nan     # violates z-present
    c[::37] = "??"       # violates c-known
    return table.with_column("x", x).with_column("z", z).with_column("c", c)


def main() -> None:
    print("fitting a small pipeline...")
    pipeline = DQuaG(DQuaGConfig(hidden_dim=16, epochs=8, batch_size=64)).fit(
        make_table(600, seed=0), rng=0
    )
    ruleset = RuleSet.from_payload(RULES)
    dirty = make_dirty(1200, seed=1)

    # -- 1. one-shot fusion -------------------------------------------------
    plain = pipeline.validate(dirty)
    fused = pipeline.validate(dirty, rules=ruleset)
    print("\nfused one-shot report:")
    print("  ", fused.summary())
    print("   by severity:", fused.rule_report.by_severity())
    print("   provenance: ", fused.provenance_counts())
    assert np.array_equal(fused.cell_flags, plain.cell_flags)  # GNN untouched
    for outcome in fused.rule_report.outcomes:
        print(f"   rule {outcome.rule_id!r}: {outcome.n_cells} cell(s) "
              f"in {outcome.n_rows} row(s) [{outcome.severity}]")

    # -- 2. streamed: the chunked fold is exact -----------------------------
    streamed = pipeline.streaming_validator(
        chunk_size=256, keep_cell_errors=True, rules=ruleset
    ).validate_table(dirty)
    assert streamed.rule_report.to_dict() == fused.rule_report.to_dict()
    print("\nstreamed fold matches the one-shot rule report bit for bit")

    # -- 3. the serving layer ----------------------------------------------
    service = ValidationService(capacity=4)
    service.add("demo", pipeline)
    with ValidationGateway(service, port=0) as gateway:
        client = Client(port=gateway.port)
        client.set_rules("demo", RULES)
        print("\nPUT /v1/pipelines/demo/rules ->", client.get_rules("demo"))
        remote = client.validate("demo", dirty, include_errors=True)
        assert remote.rule_report.to_dict() == fused.rule_report.to_dict()
        print("HTTP validate carries the same fused rule report")

        # Incompatible rules fail the PUT (422), never a later validate.
        try:
            client.set_rules("demo", {"rules": [
                {"id": "ghost", "predicate": {"type": "not_null", "column": "ghost"}}
            ]})
        except GatewayError as exc:
            print("incompatible rules rejected at PUT:", exc)
        print("rules detached:", client.delete_rules("demo"))
    service.close()

    # -- 4. rules as a stand-alone baseline ---------------------------------
    from repro.baselines import RuleSetValidator

    baseline = RuleSetValidator(RULES, problem_fraction=0.02).fit(make_table(600, seed=0))
    verdict = baseline.validate_batch(dirty)
    print("\nRuleSetValidator verdict:", verdict.is_problematic,
          f"({len(verdict.flagged_rows)} flagged rows, score={verdict.score:.3f})")


if __name__ == "__main__":
    main()
