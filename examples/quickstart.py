"""Quickstart: train DQuaG on clean data, validate new data, repair it.

Runs in under a minute on a laptop CPU::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DQuaG, DQuaGConfig
from repro.datasets import get_generator
from repro.errors import CompositeInjector, MissingValueInjector, NumericAnomalyInjector
from repro.utils.logging import configure_demo_logging


def main() -> None:
    configure_demo_logging()

    # 1. Clean data — here the Hotel Booking simulator; any Table works.
    generator = get_generator("hotel")
    clean = generator.generate_clean(6000, rng=0)
    train, rest = clean.split(0.5, rng=1)
    calibration, holdout = rest.split(0.4, rng=2)

    # 2. Phase 1: fit the pipeline on clean data. The feature graph is
    #    built from pairwise statistics plus the dataset's semantic
    #    relationships (the role ChatGPT-4 plays in the paper).
    config = DQuaGConfig(epochs=15, hidden_dim=32)
    pipeline = DQuaG(config).fit(
        train,
        rng=0,
        knowledge_edges=generator.knowledge_edges(),
        calibration_table=calibration,
    )
    print(f"\nfeature graph: {pipeline.graph.n_nodes} nodes, {pipeline.graph.n_edges} edges")
    print(f"row threshold (95th pct of clean errors): {pipeline.calibration.threshold:.5f}")

    # 3. Phase 2: validate unseen data.
    clean_report = pipeline.validate(holdout)
    print(f"\nclean holdout     → {clean_report.summary()}")

    injector = CompositeInjector(
        [
            NumericAnomalyInjector(["lead_time"], fraction=0.2),
            MissingValueInjector(["adr"], fraction=0.2),
        ]
    )
    dirty, ground_truth = injector.inject(holdout, rng=3)
    dirty_report = pipeline.validate(dirty)
    print(f"corrupted holdout → {dirty_report.summary()}")

    # Per-row and per-cell drill-down.
    first_bad = int(dirty_report.flagged_rows[0])
    print(f"\nrow {first_bad} flagged; problematic features: {dirty_report.flagged_features_of(first_bad)}")

    # 4. Repair: only flagged cells are modified.
    repaired, summary = pipeline.repair(dirty, dirty_report, iterations=2)
    repaired_report = pipeline.validate(repaired)
    print(f"\nrepair touched {summary.n_cells_repaired} cells across {summary.n_rows_touched} rows")
    print(f"repaired holdout  → {repaired_report.summary()}")

    # 5. How well did detection match the injected ground truth?
    flagged = set(dirty_report.flagged_rows.tolist())
    truly_dirty = set(np.flatnonzero(ground_truth.row_mask).tolist())
    recall = len(flagged & truly_dirty) / len(truly_dirty)
    print(f"\nrow-level recall vs injected ground truth: {recall:.1%}")


if __name__ == "__main__":
    main()
