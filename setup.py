"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build an editable wheel. ``python setup.py develop`` (or the
``.pth``-based fallback in ``scripts/dev_install.py``) installs the package
in editable mode without it. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
